//! The fixed-size block linear-probing aggregation table (§4.1).
//!
//! Design decisions, all straight from the paper:
//!
//! * **Single level, linear probing** — "the simplest approach has the
//!   lowest CPU overhead".
//! * **Fixed to the cache size** — the working set of `HASHING` never
//!   exceeds the cache; when the table is full it is *sealed* and replaced,
//!   never grown.
//! * **Full at 25%** — at this fill rate collisions are "very rare or even
//!   non-existing", so no CPU cycles are lost on probe chains. The
//!   apparently wasted memory is one or few tables per thread — negligible.
//! * **Probing within blocks** — the table is divided into
//!   [`hsa_hash::FANOUT`] equal blocks, one per radix digit of the current
//!   recursion level, and a key only ever probes inside its block. A full
//!   table therefore splits into 256 ranges that are exactly the runs the
//!   framework needs ("we adapted the linear probing to work within
//!   blocks, such that we can cleanly split a table into ranges for the
//!   recursive calls").
//!
//! Within a block the home slot is derived from the hash bits *below* the
//! digits already consumed by outer passes, scaled so that slot order
//! approximates hash order — the sealed table is (modulo probe
//! displacement) **sorted by hash value**, which is the paper's point:
//! the fastest way to build a hash table is a sorting algorithm.

use hsa_hash::{digit, remaining_bits, Hasher64, FANOUT};
use hsa_kernels::{prefetch_read, probe_scan, KernelKind, BATCH};
use hsa_obs::Histogram;

/// Probe-behavior metrics of one [`AggTable`], collected only when enabled
/// via [`AggTable::set_metrics_enabled`] (plain cells; the table is
/// per-worker, so no synchronization is needed). They quantify §4.1's
/// claim that at 25% fill collisions are "very rare or even non-existing".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableMetrics {
    /// Keys inserted or matched (`Insert::New` + `Insert::Hit`).
    pub inserts: u64,
    /// Total probe steps beyond the home slot.
    pub probe_steps: u64,
    /// Probe steps per insert (hits and news).
    pub probe_len: Histogram,
    /// Distance from the home slot at which each *new* key landed — the
    /// block displacement that bounds how far the sealed table's runs
    /// deviate from hash order.
    pub displacement: Histogram,
}

impl TableMetrics {
    #[inline]
    fn record(&mut self, steps: u64, is_new: bool) {
        self.inserts += 1;
        self.probe_steps += steps;
        self.probe_len.record(steps);
        if is_new {
            self.displacement.record(steps);
        }
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &TableMetrics) {
        self.inserts += other.inserts;
        self.probe_steps += other.probe_steps;
        self.probe_len.merge(&other.probe_len);
        self.displacement.merge(&other.displacement);
    }
}

/// Geometry of an [`AggTable`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TableConfig {
    /// Total slot count; power of two, ≥ [`FANOUT`].
    pub total_slots: usize,
    /// Percentage of slots that may be occupied before the table reports
    /// [`Insert::Full`]. The paper fixes this to 25.
    pub fill_percent: usize,
}

impl TableConfig {
    /// The paper's fill rate.
    pub const PAPER_FILL_PERCENT: usize = 25;

    /// Smallest legal slot count (the floor [`TableConfig::for_cache_bytes`]
    /// enforces). The driver's degradation policy halves table sizes under
    /// memory pressure down to exactly this.
    pub const MIN_TOTAL_SLOTS: usize = 2 * FANOUT;

    /// Size a table for a cache budget of `cache_bytes`, given the number
    /// of aggregate state columns it must carry. Slot cost = key + states
    /// (the occupancy bitmap is 1/64th and ignored).
    pub fn for_cache_bytes(cache_bytes: usize, n_state_cols: usize) -> Self {
        let slot_bytes = 8 * (1 + n_state_cols);
        let raw = (cache_bytes / slot_bytes).max(2 * FANOUT);
        // Round down to a power of two so digit/slot math is shifts.
        let total_slots = 1usize << (usize::BITS - 1 - raw.leading_zeros());
        Self { total_slots, fill_percent: Self::PAPER_FILL_PERCENT }
    }

    /// Occupancy limit implied by the fill rate (at least 1).
    pub fn capacity(&self) -> usize {
        (self.total_slots * self.fill_percent / 100).max(1)
    }

    /// Heap bytes a table of this geometry costs, given its state column
    /// count: key + state arrays (8 B each per slot) plus the 1/64
    /// occupancy bitmap. This is what the memory budget charges per table.
    pub fn mem_bytes(&self, n_state_cols: usize) -> u64 {
        (self.total_slots * 8 * (1 + n_state_cols) + self.total_slots / 8) as u64
    }
}

/// Outcome of one [`AggTable::insert_batch`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BatchInsert {
    /// Keys absorbed from the front of the batch (new or hit).
    pub consumed: usize,
    /// True when key `consumed` hit a full table (fill limit or block
    /// overflow) and was *not* inserted — seal and retry from there.
    pub full: bool,
}

/// Outcome of [`AggTable::insert_key`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Insert {
    /// Key already present; slot returned.
    Hit(u32),
    /// Key newly inserted; slot returned.
    New(u32),
    /// Fill limit reached (or the key's block overflowed): the caller must
    /// seal the table into runs and start a fresh one. The key was *not*
    /// inserted.
    Full,
}

/// The fixed-size block linear-probing aggregation table.
pub struct AggTable {
    level: u32,
    block_slots: usize,
    block_shift: u32,
    /// How far to shift a hash right so its in-block bits remain, scaled
    /// to the block size (see `home_slot`).
    hash_shift: u32,
    keys: Vec<u64>,
    /// Occupancy bitmap, one bit per slot.
    occ: Vec<u64>,
    cols: Vec<Vec<u64>>,
    identities: Vec<u64>,
    len: usize,
    capacity: usize,
    metrics: Option<Box<TableMetrics>>,
}

impl AggTable {
    /// Create a table at recursion `level` whose state columns are
    /// pre-filled with `identities` (see [`crate::identity_of`]).
    pub fn new(config: TableConfig, level: u32, identities: &[u64]) -> Self {
        assert!(config.total_slots.is_power_of_two(), "slot count must be a power of two");
        assert!(config.total_slots >= FANOUT, "need at least one slot per block");
        assert!((1..=100).contains(&config.fill_percent), "fill percent out of range");
        assert!(level < hsa_hash::MAX_LEVEL, "hash digits exhausted");
        let block_slots = config.total_slots / FANOUT;
        // In-block home slot = top `log2(block_slots)` bits of the hash
        // bits remaining below the consumed digits. At the deepest levels
        // fewer than log2(block_slots) bits remain; the saturation reuses
        // low (already consumed) bits, which only costs probe steps, never
        // correctness.
        let hash_shift = remaining_bits(level).saturating_sub(block_slots.trailing_zeros());
        Self {
            level,
            block_slots,
            block_shift: block_slots.trailing_zeros(),
            hash_shift,
            keys: vec![0; config.total_slots],
            occ: vec![0; config.total_slots / 64 + 1],
            cols: identities.iter().map(|&id| vec![id; config.total_slots]).collect(),
            identities: identities.to_vec(),
            len: 0,
            capacity: config.capacity(),
            metrics: None,
        }
    }

    /// Turn probe metrics collection on or off. Off (the default) keeps
    /// the insert hot path free of histogram work; disabling discards any
    /// collected metrics.
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.metrics.is_none() {
                self.metrics = Some(Box::default());
            }
        } else {
            self.metrics = None;
        }
    }

    /// Collected probe metrics (None unless enabled).
    pub fn metrics(&self) -> Option<&TableMetrics> {
        self.metrics.as_deref()
    }

    /// Take the collected metrics, leaving fresh (zeroed) collection in
    /// place if metrics are enabled. Callers flush this into their own
    /// aggregation at seal time.
    pub fn take_metrics(&mut self) -> Option<TableMetrics> {
        self.metrics.as_mut().map(|m| std::mem::take(&mut **m))
    }

    /// Occupied group count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no groups are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot count.
    #[inline]
    pub fn total_slots(&self) -> usize {
        self.block_slots * FANOUT
    }

    /// The recursion level this table was built for.
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Occupancy limit.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-target an *empty* table to a different recursion level so pooled
    /// tables can be reused across levels without reallocating (the paper
    /// keeps "one or very few hash tables per thread").
    pub fn set_level(&mut self, level: u32) {
        assert!(self.is_empty(), "cannot re-level a non-empty table");
        assert!(level < hsa_hash::MAX_LEVEL, "hash digits exhausted");
        self.level = level;
        self.hash_shift = remaining_bits(level).saturating_sub(self.block_shift);
    }

    #[inline(always)]
    fn is_occupied(&self, slot: usize) -> bool {
        self.occ[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    #[inline(always)]
    fn set_occupied(&mut self, slot: usize) {
        self.occ[slot >> 6] |= 1u64 << (slot & 63);
    }

    /// Home slot of a hash: block = current-level digit, in-block offset =
    /// next hash bits, preserving hash order within the block.
    #[inline(always)]
    fn home_slot(&self, hash: u64) -> usize {
        let block = digit(hash, self.level);
        let in_block = ((hash >> self.hash_shift) as usize) & (self.block_slots - 1);
        (block << self.block_shift) | in_block
    }

    /// Insert `key` with `hash`; aggregate state is *not* touched (state
    /// columns are updated separately, per column, via [`Self::col_mut`]).
    #[inline]
    pub fn insert_key(&mut self, key: u64, hash: u64) -> Insert {
        if self.len >= self.capacity {
            return Insert::Full;
        }
        let home = self.home_slot(hash);
        let block_base = home & !(self.block_slots - 1);
        let mut slot = home;
        // Probe linearly, wrapping within the block.
        for step in 0..self.block_slots {
            if !self.is_occupied(slot) {
                self.keys[slot] = key;
                self.set_occupied(slot);
                self.len += 1;
                if let Some(m) = &mut self.metrics {
                    m.record(step as u64, true);
                }
                return Insert::New(slot as u32);
            }
            if self.keys[slot] == key {
                if let Some(m) = &mut self.metrics {
                    m.record(step as u64, false);
                }
                return Insert::Hit(slot as u32);
            }
            slot = block_base | ((slot + 1) & (self.block_slots - 1));
        }
        // Block overflow: astronomically unlikely below the fill limit with
        // a good hash, but adversarial inputs can do it — treat as full.
        Insert::Full
    }

    /// Batched [`Self::insert_key`] over a slice of keys, recording the
    /// resolved slot of every absorbed key into `mapping` (the §3.3
    /// mapping vector). Keys are hashed [`BATCH`] at a time; the home
    /// cache lines (key array and occupancy word) of the whole batch are
    /// prefetched before the first probe resolves, so the probes' cache
    /// misses overlap instead of serializing. Outcomes, slot assignments,
    /// and probe metrics are bit-identical to the scalar loop — `kind`
    /// only selects how the probe scan compares keys.
    #[inline]
    pub fn insert_batch<H: Hasher64>(
        &mut self,
        hasher: H,
        keys: &[u64],
        kind: KernelKind,
        mapping: &mut Vec<u32>,
    ) -> BatchInsert {
        self.batch_impl::<H, true>(hasher, keys, kind, mapping)
    }

    /// [`Self::insert_batch`] without slot recording — the DISTINCT fast
    /// path, which needs no mapping vector.
    #[inline]
    pub fn insert_batch_distinct<H: Hasher64>(
        &mut self,
        hasher: H,
        keys: &[u64],
        kind: KernelKind,
    ) -> BatchInsert {
        let mut unused = Vec::new();
        self.batch_impl::<H, false>(hasher, keys, kind, &mut unused)
    }

    fn batch_impl<H: Hasher64, const RECORD: bool>(
        &mut self,
        hasher: H,
        keys: &[u64],
        kind: KernelKind,
        mapping: &mut Vec<u32>,
    ) -> BatchInsert {
        let n = keys.len();
        // Rolling [`BATCH`]-deep pipeline: key `i + BATCH` is hashed and
        // its home lines prefetched while key `i` resolves, so every
        // probe's loads get a full window of probe work to arrive in. The
        // ring holds the already-computed home slots. The occupancy word
        // is prefetched too — at large table sizes the bitmap itself
        // falls out of cache.
        let mut ring = [0usize; BATCH];
        for (r, &key) in ring.iter_mut().zip(&keys[..n.min(BATCH)]) {
            let home = self.home_slot(hasher.hash_u64(key));
            *r = home;
            prefetch_read(&self.keys, home);
            prefetch_read(&self.occ, home >> 6);
        }
        for i in 0..n {
            let home = ring[i & (BATCH - 1)];
            if let Some(&key) = keys.get(i + BATCH) {
                let ahead = self.home_slot(hasher.hash_u64(key));
                ring[i & (BATCH - 1)] = ahead;
                prefetch_read(&self.keys, ahead);
                prefetch_read(&self.occ, ahead >> 6);
            }
            match self.probe_resolve(keys[i], home, kind) {
                Insert::New(slot) | Insert::Hit(slot) => {
                    if RECORD {
                        mapping.push(slot);
                    }
                }
                Insert::Full => return BatchInsert { consumed: i, full: true },
            }
        }
        BatchInsert { consumed: n, full: false }
    }

    /// Occupancy bits of slots `start..start + n` (`n` ≤ 64), bit `i` ⇔
    /// slot `start + i`.
    #[inline(always)]
    fn occ_bits(&self, start: usize, n: usize) -> u64 {
        let w = start >> 6;
        let b = start & 63;
        let mut bits = self.occ[w] >> b;
        if b != 0 {
            // The bitmap is over-allocated by one word, so `w + 1` is in
            // bounds for every valid slot range.
            bits |= self.occ[w + 1] << (64 - b);
        }
        if n < 64 {
            bits &= (1u64 << n) - 1;
        }
        bits
    }

    /// One probe resolved via [`probe_scan`]: same semantics as the walk
    /// in [`Self::insert_key`], including the capacity check, the probe
    /// order (home → block end, wrap to block base), the metrics, and the
    /// block-overflow `Full`.
    #[inline]
    fn probe_resolve(&mut self, key: u64, home: usize, kind: KernelKind) -> Insert {
        if self.len >= self.capacity {
            return Insert::Full;
        }
        // Fast path: at 25% fill almost every probe ends at the home slot
        // (which the pipeline prefetched), so resolve it with the walk's
        // two cheap checks before setting up any scan state.
        if !self.is_occupied(home) {
            self.keys[home] = key;
            self.set_occupied(home);
            self.len += 1;
            if let Some(m) = &mut self.metrics {
                m.record(0, true);
            }
            return Insert::New(home as u32);
        }
        if self.keys[home] == key {
            if let Some(m) = &mut self.metrics {
                m.record(0, false);
            }
            return Insert::Hit(home as u32);
        }
        self.probe_collision(key, home, kind)
    }

    /// The collision continuation of [`Self::probe_resolve`], kept out of
    /// line so the hot fast path inlines into the batch loop. Scans the
    /// rest of the block with [`probe_scan`], one cache line of keys at a
    /// time, in exactly the walk's order: home → block end, wrap to block
    /// base.
    #[inline(never)]
    fn probe_collision(&mut self, key: u64, home: usize, kind: KernelKind) -> Insert {
        let block_base = home & !(self.block_slots - 1);
        let block_end = block_base + self.block_slots;
        let segments = [(home + 1, block_end, 1), (block_base, home, block_end - home)];
        for (start, end, step_base) in segments {
            let mut s = start;
            while s < end {
                // Scan one cache line of keys at a time (8 slots, aligned
                // upward): the probe almost always ends in the home line
                // (25% fill), so wider scans would only add memory
                // traffic the scalar walk never incurs.
                let n = (((s | 7) + 1).min(end)) - s;
                let occ = self.occ_bits(s, n);
                match probe_scan(kind, &self.keys[s..s + n], occ, key) {
                    Some((i, true)) => {
                        if let Some(m) = &mut self.metrics {
                            m.record((step_base + (s - start) + i) as u64, false);
                        }
                        return Insert::Hit((s + i) as u32);
                    }
                    Some((i, false)) => {
                        let slot = s + i;
                        self.keys[slot] = key;
                        self.set_occupied(slot);
                        self.len += 1;
                        if let Some(m) = &mut self.metrics {
                            m.record((step_base + (s - start) + i) as u64, true);
                        }
                        return Insert::New(slot as u32);
                    }
                    None => s += n,
                }
            }
        }
        Insert::Full
    }

    /// Mutable view of state column `i` (indexed by slot).
    #[inline]
    pub fn col_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.cols[i]
    }

    /// Shared view of state column `i`.
    #[inline]
    pub fn col(&self, i: usize) -> &[u64] {
        &self.cols[i]
    }

    /// Number of state columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Seal the table: for every block (= radix digit of this level) with
    /// occupied slots, yield `(digit, keys, state_col_values)` with slots
    /// compacted in slot order (≈ hash order). The table is left empty and
    /// reusable: occupancy cleared, state columns re-filled with their
    /// identities.
    ///
    /// Cost is `O(occupied + slots/64)`: the occupancy bitmap is walked
    /// word-wise and identities are restored only at the occupied slots.
    /// This matters because every bucket of the recursion seals once, and
    /// small buckets must not pay for the table's full extent.
    pub fn seal(&mut self, mut emit: impl FnMut(usize, &[u64], &[Vec<u64>])) {
        let mut keys_buf: Vec<u64> = Vec::new();
        let mut cols_buf: Vec<Vec<u64>> = self.cols.iter().map(|_| Vec::new()).collect();
        let total = self.total_slots();
        let mut cur_block = usize::MAX;
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            self.occ[w] = 0;
            while bits != 0 {
                let slot = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert!(slot < total);
                let block = slot >> self.block_shift;
                if block != cur_block {
                    if !keys_buf.is_empty() {
                        emit(cur_block, &keys_buf, &cols_buf);
                        keys_buf.clear();
                        cols_buf.iter_mut().for_each(Vec::clear);
                    }
                    cur_block = block;
                }
                keys_buf.push(self.keys[slot]);
                for ((c, col), &id) in cols_buf.iter_mut().zip(&mut self.cols).zip(&self.identities)
                {
                    c.push(col[slot]);
                    col[slot] = id;
                }
            }
        }
        if !keys_buf.is_empty() {
            emit(cur_block, &keys_buf, &cols_buf);
        }
        self.len = 0;
    }

    /// Iterate over occupied `(slot, key)` pairs in slot order.
    pub fn iter_keys(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        (0..self.total_slots()).filter(|&s| self.is_occupied(s)).map(|s| (s as u32, self.keys[s]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_agg::StateOp;
    use hsa_hash::{Hasher64, Murmur2};

    fn small() -> TableConfig {
        TableConfig { total_slots: 1 << 12, fill_percent: 25 }
    }

    #[test]
    fn config_for_cache_bytes() {
        let c = TableConfig::for_cache_bytes(2 << 20, 1);
        // 2 MiB / 16 B per slot = 128 Ki slots.
        assert_eq!(c.total_slots, 1 << 17);
        assert_eq!(c.capacity(), 1 << 15);
        // Tiny budgets still give a usable table.
        let tiny = TableConfig::for_cache_bytes(1024, 3);
        assert!(tiny.total_slots >= 2 * FANOUT);
    }

    #[test]
    fn insert_hit_new_roundtrip() {
        let mut t = AggTable::new(small(), 0, &[]);
        let h = Murmur2::default();
        let k = 42u64;
        match t.insert_key(k, h.hash_u64(k)) {
            Insert::New(s1) => match t.insert_key(k, h.hash_u64(k)) {
                Insert::Hit(s2) => assert_eq!(s1, s2),
                other => panic!("expected Hit, got {other:?}"),
            },
            other => panic!("expected New, got {other:?}"),
        }
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fill_limit_reports_full() {
        let cfg = small();
        let mut t = AggTable::new(cfg, 0, &[]);
        let h = Murmur2::default();
        let cap = cfg.capacity();
        let mut inserted = 0u64;
        let mut key = 0u64;
        while inserted < cap as u64 {
            match t.insert_key(key, h.hash_u64(key)) {
                Insert::New(_) => inserted += 1,
                Insert::Hit(_) => {}
                Insert::Full => panic!("full before fill limit at {inserted}"),
            }
            key += 1;
        }
        assert_eq!(t.insert_key(u64::MAX, h.hash_u64(u64::MAX)), Insert::Full);
    }

    #[test]
    fn distinct_keys_same_hash_block_coexist() {
        // Two different keys engineered into the same home slot must both
        // be stored (probe resolves on key comparison).
        let mut t = AggTable::new(small(), 0, &[]);
        let hash = 0xAB00_0000_0000_0000u64;
        assert!(matches!(t.insert_key(1, hash), Insert::New(_)));
        let s2 = match t.insert_key(2, hash) {
            Insert::New(s) => s,
            other => panic!("expected New, got {other:?}"),
        };
        assert_eq!(t.insert_key(2, hash), Insert::Hit(s2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn adversarial_block_overflow_reports_full() {
        // Same hash, all-distinct keys: the probe chain fills one block
        // while the table as a whole is nearly empty.
        let cfg = TableConfig { total_slots: FANOUT * 8, fill_percent: 100 };
        let mut t = AggTable::new(cfg, 0, &[]);
        let hash = 0u64;
        for k in 0..8 {
            assert!(matches!(t.insert_key(k, hash), Insert::New(_)), "k={k}");
        }
        assert_eq!(t.insert_key(99, hash), Insert::Full);
    }

    #[test]
    fn seal_splits_by_digit_and_preserves_keys() {
        let mut t = AggTable::new(small(), 0, &[]);
        let h = Murmur2::default();
        let n = 500u64;
        for k in 0..n {
            assert!(!matches!(t.insert_key(k, h.hash_u64(k)), Insert::Full));
        }
        let mut seen = Vec::new();
        let mut last_digit = None;
        t.seal(|d, keys, _cols| {
            // Digits strictly increasing; all keys belong to the digit.
            if let Some(prev) = last_digit {
                assert!(d > prev);
            }
            last_digit = Some(d);
            for &k in keys {
                assert_eq!(hsa_hash::digit(h.hash_u64(k), 0), d);
                seen.push(k);
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        // Table is reusable.
        assert!(t.is_empty());
        assert!(matches!(t.insert_key(7, h.hash_u64(7)), Insert::New(_)));
    }

    #[test]
    fn seal_emits_runs_sorted_by_hash_within_block() {
        let mut t = AggTable::new(small(), 0, &[]);
        let h = Murmur2::default();
        for k in 0..2000u64 {
            if t.insert_key(k, h.hash_u64(k)) == Insert::Full {
                break;
            }
        }
        t.seal(|d, keys, _| {
            // Home slots are hash-ordered; linear probing can displace a
            // key by at most its probe distance, which at 25% fill is tiny.
            // We assert the keys are *approximately* sorted by hash: full
            // sortedness of home slots.
            let hashes: Vec<u64> = keys.iter().map(|&k| h.hash_u64(k)).collect();
            for w in hashes.windows(2) {
                // allow local inversions from probing but not cross-block
                assert_eq!(hsa_hash::digit(w[0], 0), d);
            }
        });
    }

    #[test]
    fn state_columns_prefilled_and_reset() {
        let ids = [crate::identity_of(StateOp::Min), crate::identity_of(StateOp::Sum)];
        let mut t = AggTable::new(small(), 0, &ids);
        assert!(t.col(0).iter().all(|&s| s == u64::MAX));
        assert!(t.col(1).iter().all(|&s| s == 0));
        let h = Murmur2::default();
        let slot = match t.insert_key(5, h.hash_u64(5)) {
            Insert::New(s) => s as usize,
            other => panic!("{other:?}"),
        };
        t.col_mut(0)[slot] = 123;
        t.col_mut(1)[slot] = 456;
        let mut emitted = 0;
        t.seal(|_, keys, cols| {
            emitted += keys.len();
            assert_eq!(cols[0], vec![123]);
            assert_eq!(cols[1], vec![456]);
        });
        assert_eq!(emitted, 1);
        // Reset restored identities.
        assert!(t.col(0).iter().all(|&s| s == u64::MAX));
        assert!(t.col(1).iter().all(|&s| s == 0));
    }

    #[test]
    fn level_one_uses_second_digit() {
        let mut t = AggTable::new(small(), 1, &[]);
        // hash with digit0 = 0xAA, digit1 = 0x3C
        let hash = 0xAA3C_0000_0000_0000u64;
        assert!(matches!(t.insert_key(9, hash), Insert::New(_)));
        let mut digits = Vec::new();
        t.seal(|d, _, _| digits.push(d));
        assert_eq!(digits, vec![0x3C]);
    }

    #[test]
    fn set_level_retargets_digit() {
        let mut t = AggTable::new(small(), 0, &[]);
        t.set_level(3);
        // digit 3 of this hash is 0x5F.
        let hash = 0x5Fu64 << 32;
        assert!(matches!(t.insert_key(1, hash), Insert::New(_)));
        let mut digits = Vec::new();
        t.seal(|d, _, _| digits.push(d));
        assert_eq!(digits, vec![0x5F]);
    }

    #[test]
    fn deepest_level_still_works() {
        let mut t = AggTable::new(small(), 7, &[]);
        let h = Murmur2::default();
        for k in 0..100u64 {
            assert!(
                !matches!(t.insert_key(k, h.hash_u64(k)), Insert::Full),
                "level-7 insert failed for {k}"
            );
        }
        let mut total = 0;
        t.seal(|_, keys, _| total += keys.len());
        assert_eq!(total, 100);
    }

    #[test]
    #[should_panic(expected = "cannot re-level a non-empty table")]
    fn set_level_rejects_non_empty() {
        let mut t = AggTable::new(small(), 0, &[]);
        let _ = t.insert_key(1, 12345);
        t.set_level(1);
    }

    #[test]
    fn aggregation_through_columns_matches_reference() {
        // Full mini-pipeline: insert keys, update a SUM column via the
        // returned slots, seal, compare against a BTreeMap reference.
        use std::collections::BTreeMap;
        let mut t = AggTable::new(small(), 0, &[crate::identity_of(StateOp::Sum)]);
        let h = Murmur2::default();
        let keys: Vec<u64> = (0..1000u64).map(|i| i % 97).collect();
        let vals: Vec<u64> = (0..1000u64).collect();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for (&k, &v) in keys.iter().zip(&vals) {
            let slot = match t.insert_key(k, h.hash_u64(k)) {
                Insert::New(s) | Insert::Hit(s) => s as usize,
                Insert::Full => panic!("unexpected full"),
            };
            let s = &mut t.col_mut(0)[slot];
            *s = StateOp::Sum.apply(*s, v);
            *reference.entry(k).or_insert(0) += v;
        }
        let mut got: BTreeMap<u64, u64> = BTreeMap::new();
        t.seal(|_, keys, cols| {
            for (&k, &s) in keys.iter().zip(&cols[0]) {
                assert!(got.insert(k, s).is_none(), "duplicate group {k}");
            }
        });
        assert_eq!(got, reference);
    }

    /// Adversarial hasher: every key maps to the same hash, so probes
    /// chain through one block and overflow it.
    #[derive(Copy, Clone, Default)]
    struct ZeroHash;
    impl Hasher64 for ZeroHash {
        fn hash_u64(&self, _key: u64) -> u64 {
            0
        }

        fn hash_bytes(&self, _bytes: &[u8]) -> u64 {
            0
        }
    }

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    /// Drive the scalar `insert_key` loop, mirroring what `insert_batch`
    /// reports: (outcomes-as-batch, mapping, metrics).
    fn scalar_drive<H: Hasher64>(
        t: &mut AggTable,
        hasher: H,
        keys: &[u64],
    ) -> (BatchInsert, Vec<u32>) {
        let mut mapping = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match t.insert_key(key, hasher.hash_u64(key)) {
                Insert::New(s) | Insert::Hit(s) => mapping.push(s),
                Insert::Full => return (BatchInsert { consumed: i, full: true }, mapping),
            }
        }
        (BatchInsert { consumed: keys.len(), full: false }, mapping)
    }

    fn sealed_contents(t: &mut AggTable) -> Vec<(usize, Vec<u64>)> {
        let mut out = Vec::new();
        t.seal(|d, keys, _| out.push((d, keys.to_vec())));
        out
    }

    #[test]
    fn insert_batch_matches_insert_key_on_random_workloads() {
        let h = Murmur2::default();
        for kind in hsa_kernels::available_kinds() {
            let mut r = xorshift(0xBADC0DE ^ kind as u64);
            for round in 0..20 {
                let slots = [2 * FANOUT, 1 << 10, 1 << 12][round % 3];
                let fill = [25usize, 50, 100][(round / 3) % 3];
                let level = (round % 8) as u32;
                let cfg = TableConfig { total_slots: slots, fill_percent: fill };
                let n = (r() % 4000) as usize;
                let keys: Vec<u64> = (0..n)
                    .map(|_| match r() % 4 {
                        0 => u64::MAX - r() % 3, // saturated keys
                        1 => r() % 16,           // heavy duplication
                        _ => r() % 1000,
                    })
                    .collect();
                let mut a = AggTable::new(cfg, level, &[]);
                let mut b = AggTable::new(cfg, level, &[]);
                a.set_metrics_enabled(true);
                b.set_metrics_enabled(true);
                let (out_a, map_a) = scalar_drive(&mut a, h, &keys);
                let mut map_b = Vec::new();
                let out_b = b.insert_batch(h, &keys, kind, &mut map_b);
                assert_eq!(out_a, out_b, "{kind:?} round {round} outcomes");
                assert_eq!(map_a, map_b, "{kind:?} round {round} mapping");
                assert_eq!(a.len(), b.len(), "{kind:?} round {round} len");
                assert_eq!(
                    a.take_metrics(),
                    b.take_metrics(),
                    "{kind:?} round {round} metrics drifted between scalar and batched probing"
                );
                assert_eq!(
                    sealed_contents(&mut a),
                    sealed_contents(&mut b),
                    "{kind:?} round {round} sealed runs"
                );
            }
        }
    }

    #[test]
    fn insert_batch_block_overflow_matches_scalar() {
        // ZeroHash funnels everything into block 0: the block overflows
        // while the table is nearly empty, in both paths at the same key.
        let cfg = TableConfig { total_slots: FANOUT * 8, fill_percent: 100 };
        for kind in hsa_kernels::available_kinds() {
            let keys: Vec<u64> = (0..40).collect();
            let mut a = AggTable::new(cfg, 0, &[]);
            let mut b = AggTable::new(cfg, 0, &[]);
            let (out_a, map_a) = scalar_drive(&mut a, ZeroHash, &keys);
            let mut map_b = Vec::new();
            let out_b = b.insert_batch(ZeroHash, &keys, kind, &mut map_b);
            assert_eq!(out_a, out_b, "{kind:?}");
            assert!(out_b.full, "{kind:?}: 40 distinct keys must overflow an 8-slot block");
            assert_eq!(out_b.consumed, 8, "{kind:?}");
            assert_eq!(map_a, map_b, "{kind:?}");
        }
    }

    #[test]
    fn insert_batch_distinct_matches_mapped_variant() {
        let h = Murmur2::default();
        let mut r = xorshift(77);
        let keys: Vec<u64> = (0..3000).map(|_| r() % 500).collect();
        for kind in hsa_kernels::available_kinds() {
            let mut a = AggTable::new(small(), 2, &[]);
            let mut b = AggTable::new(small(), 2, &[]);
            let mut mapping = Vec::new();
            let out_a = a.insert_batch(h, &keys, kind, &mut mapping);
            let out_b = b.insert_batch_distinct(h, &keys, kind);
            assert_eq!(out_a, out_b, "{kind:?}");
            assert_eq!(mapping.len(), out_a.consumed, "{kind:?}");
            assert_eq!(sealed_contents(&mut a), sealed_contents(&mut b), "{kind:?}");
        }
    }

    #[test]
    fn insert_batch_resumes_after_seal() {
        // The framework's retry loop: on `full`, seal and continue from
        // `consumed`. The union of sealed + final contents must equal the
        // scalar single-table reference aggregation.
        use std::collections::BTreeSet;
        let h = Murmur2::default();
        let cfg = TableConfig { total_slots: 2 * FANOUT, fill_percent: 25 };
        for kind in hsa_kernels::available_kinds() {
            let keys: Vec<u64> = (0..2000u64).collect();
            let mut t = AggTable::new(cfg, 0, &[]);
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            let mut from = 0;
            while from < keys.len() {
                let out = t.insert_batch_distinct(h, &keys[from..], kind);
                from += out.consumed;
                if out.full {
                    t.seal(|_, ks, _| seen.extend(ks.iter().copied()));
                } else {
                    break;
                }
            }
            t.seal(|_, ks, _| seen.extend(ks.iter().copied()));
            assert_eq!(seen.len(), 2000, "{kind:?}");
        }
    }

    #[test]
    fn metrics_account_for_every_insert() {
        let mut t = AggTable::new(small(), 0, &[]);
        assert!(t.metrics().is_none(), "metrics are off by default");
        t.set_metrics_enabled(true);
        let h = Murmur2::default();
        let keys: Vec<u64> = (0..500u64).map(|i| i % 83).collect();
        let mut news = 0u64;
        for &k in &keys {
            match t.insert_key(k, h.hash_u64(k)) {
                Insert::New(_) => news += 1,
                Insert::Hit(_) => {}
                Insert::Full => panic!("unexpected full"),
            }
        }
        let m = t.take_metrics().expect("enabled");
        assert_eq!(m.inserts, keys.len() as u64);
        assert_eq!(m.probe_len.count(), keys.len() as u64);
        assert_eq!(m.displacement.count(), news);
        assert_eq!(m.probe_steps, m.probe_len.sum());
        // take_metrics leaves a fresh collector in place while enabled.
        let fresh = t.metrics().expect("still enabled");
        assert_eq!(fresh.inserts, 0);
        t.set_metrics_enabled(false);
        assert!(t.metrics().is_none());
    }
}
