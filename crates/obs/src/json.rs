//! Dependency-free JSON: a value tree with a compact writer, plus a small
//! strict parser used by tests and tools to validate emitted documents.
//!
//! This is deliberately not a serde replacement: reports are built
//! explicitly as [`JsonValue`] trees and written with [`JsonValue::write`].
//! Numbers are kept in two lanes — `U64` for exact counters (row counts up
//! to 2⁶⁴ must not round-trip through `f64`) and `F64` for derived ratios.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Exact unsigned integer (counters, row counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point (ratios, seconds). Non-finite values serialize as
    /// `null`, matching what JSON can represent.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Array of exact integers.
    pub fn u64_array(vals: impl IntoIterator<Item = u64>) -> JsonValue {
        JsonValue::Array(vals.into_iter().map(JsonValue::U64).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            JsonValue::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (accepts all number lanes).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with `indent`-space indentation.
    pub fn to_string_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.iter(), |out, item, d| {
                    item.write(out, indent, d)
                });
            }
            JsonValue::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.iter(), |out, (k, v), d| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Strict: the full input must be one
/// value plus trailing whitespace. Used by tests to assert that every
/// serializer in the workspace emits valid JSON.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // our writers never emit them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate in \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { at: start, msg: "bad number".to_string() })?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| ParseError { at: start, msg: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) {
        for text in [v.to_string_compact(), v.to_string_pretty(2)] {
            assert_eq!(&parse(&text).unwrap(), v, "through {text}");
        }
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&JsonValue::Null);
        roundtrip(&JsonValue::Bool(true));
        roundtrip(&JsonValue::U64(u64::MAX));
        roundtrip(&JsonValue::I64(-42));
        roundtrip(&JsonValue::F64(2.5));
        roundtrip(&JsonValue::str("hello \"world\"\n\tλ"));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&JsonValue::Array(vec![]));
        roundtrip(&JsonValue::Object(vec![]));
        roundtrip(&JsonValue::obj([
            ("counts", JsonValue::u64_array([1, 2, 3])),
            ("nested", JsonValue::obj([("x", JsonValue::F64(0.5))])),
            ("s", JsonValue::str("v")),
        ]));
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = JsonValue::U64(9_007_199_254_740_993); // 2^53 + 1
        let back = parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "\"unterminated", "{\"a\":1,\"a\":2}", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accepts_whitespace_and_escapes() {
        let v = parse(" {\n\t\"a\" : [ 1 , -2.5e1 ] , \"b\":\"x\\u0041\" }\n").unwrap();
        assert_eq!(v.get("b").and_then(|b| b.as_str()), Some("xA"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(-25.0));
    }

    #[test]
    fn get_and_accessors() {
        let v = JsonValue::obj([("k", JsonValue::U64(7))]);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::U64(3).as_f64(), Some(3.0));
    }
}
