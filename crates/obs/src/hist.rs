//! Fixed-size log₂ histograms of `u64` samples.

use crate::json::JsonValue;

/// Number of buckets: bucket 0 counts zeros, bucket `i` (1 ≤ i < 15)
/// counts samples in `[2^(i-1), 2^i)`, the last bucket is open-ended.
pub const HIST_BUCKETS: usize = 16;

/// A log₂-bucketed histogram. Plain `u64` cells — recording is two adds
/// and serves the per-worker sharding model (one histogram per worker,
/// merged at snapshot).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i` (samples `v` with
    /// `bucket_of(v) == i` satisfy `lower_bound(i) <= v`).
    pub fn lower_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one sample. The running sum saturates at `u64::MAX` rather
    /// than wrapping, so adversarial samples cannot corrupt the mean's
    /// sign or panic a debug build.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Cumulative counts: entry `i` = samples in buckets `0..=i`. By
    /// construction non-decreasing and ending at [`Self::count`] — the
    /// invariant the metrics property tests assert.
    pub fn cumulative(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        let mut acc = 0u64;
        for (o, &b) in out.iter_mut().zip(&self.buckets) {
            acc += b;
            *o = acc;
        }
        out
    }

    /// Smallest bucket lower bound such that at least `q` (0..=1) of the
    /// samples fall in buckets up to it — a coarse quantile.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return Self::lower_bound(i);
            }
        }
        Self::lower_bound(HIST_BUCKETS - 1)
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// JSON object: `{"count":..,"sum":..,"max":..,"mean":..,"buckets":[..]}`.
    ///
    /// Trailing empty buckets are kept so the array length is stable
    /// across reports (simpler for downstream tooling).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("count", JsonValue::U64(self.count)),
            ("sum", JsonValue::U64(self.sum)),
            ("max", JsonValue::U64(self.max)),
            ("mean", JsonValue::F64(self.mean())),
            (
                "buckets",
                JsonValue::Array(self.buckets.iter().map(|&b| JsonValue::U64(b)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's lower bound maps back into that bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::lower_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 113);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 113.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 2); // the ones
    }

    #[test]
    fn cumulative_is_monotone_and_totals() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * v % 509);
        }
        let c = h.cumulative();
        for w in c.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(c[HIST_BUCKETS - 1], h.count());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let x = v.wrapping_mul(2654435761) % 10_000;
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantile_bound_brackets_median() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(5);
        }
        // All samples are 5 → the q50 bucket bound is 4 (bucket [4,8)).
        assert_eq!(h.quantile_bound(0.5), 4);
        assert_eq!(h.quantile_bound(1.0), 4);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_bound(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
