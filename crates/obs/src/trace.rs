//! Task timeline tracer emitting Chrome trace-event JSON.
//!
//! Each worker appends complete-span (`"ph":"X"`) and instant
//! (`"ph":"i"`) events into its own bounded, cache-line-padded buffer —
//! the same sharding model as the metrics recorder, so tracing adds no
//! atomics to the hot path. Once a buffer is full further events are
//! counted as dropped rather than grown; the timeline stays bounded no
//! matter how long the run is.
//!
//! [`Tracer::to_chrome_json`] renders the merged buffers in the Chrome
//! trace-event format (`{"traceEvents": [...]}`), loadable directly in
//! Perfetto or `chrome://tracing`.

use crate::json::JsonValue;
use crate::CachePadded;
use std::cell::UnsafeCell;
use std::sync::Arc;
use std::time::Instant;

/// Default per-worker event capacity (~64 bytes/event ⇒ ~512 KiB/worker).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Up to this many `(key, value)` args are kept per event.
const MAX_ARGS: usize = 2;

/// One recorded event. Names and arg keys are `&'static str` so recording
/// never allocates; only serialization does.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name shown on the timeline slice.
    pub name: &'static str,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds; `None` renders as an instant event.
    pub dur_nanos: Option<u64>,
    /// Small numeric payload, e.g. `("rows", 8192)`.
    pub args: [Option<(&'static str, u64)>; MAX_ARGS],
}

impl TraceEvent {
    fn to_json(&self, tid: usize) -> JsonValue {
        // Chrome trace timestamps are microseconds; keep sub-µs precision
        // as a fraction rather than rounding short spans to zero.
        let mut pairs = vec![
            ("name".to_string(), JsonValue::str(self.name)),
            ("cat".to_string(), JsonValue::str("hsa")),
            ("ph".to_string(), JsonValue::str(if self.dur_nanos.is_some() { "X" } else { "i" })),
            ("ts".to_string(), JsonValue::F64(self.start_nanos as f64 / 1000.0)),
        ];
        if let Some(dur) = self.dur_nanos {
            pairs.push(("dur".to_string(), JsonValue::F64(dur as f64 / 1000.0)));
        } else {
            pairs.push(("s".to_string(), JsonValue::str("t")));
        }
        pairs.push(("pid".to_string(), JsonValue::U64(1)));
        pairs.push(("tid".to_string(), JsonValue::U64(tid as u64)));
        let args: Vec<(String, JsonValue)> =
            self.args.iter().flatten().map(|&(k, v)| (k.to_string(), JsonValue::U64(v))).collect();
        if !args.is_empty() {
            pairs.push(("args".to_string(), JsonValue::Object(args)));
        }
        JsonValue::Object(pairs)
    }
}

struct WorkerBuffer {
    events: Vec<TraceEvent>,
    dropped: u64,
}

struct Inner {
    buffers: Vec<CachePadded<UnsafeCell<WorkerBuffer>>>,
    capacity: usize,
    epoch: Instant,
}

// SAFETY: buffer `i` is only written by the thread currently acting as
// worker `i` (the crate-level sharding contract), and serialization reads
// only after those threads have quiesced.
unsafe impl Sync for Inner {}
unsafe impl Send for Inner {}

/// Cheap cloneable handle to the per-worker timeline buffers, or a no-op
/// when built with [`Tracer::disabled`].
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A tracer whose every operation is a null check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A tracer with one buffer per worker, each bounded to `capacity`
    /// events. The epoch (ts = 0) is the moment of this call.
    pub fn enabled(workers: usize, capacity: usize) -> Self {
        let buffers = (0..workers.max(1))
            .map(|_| {
                CachePadded(UnsafeCell::new(WorkerBuffer {
                    events: Vec::with_capacity(capacity.min(1024)),
                    dropped: 0,
                }))
            })
            .collect();
        Self { inner: Some(Arc::new(Inner { buffers, capacity, epoch: Instant::now() })) }
    }

    /// Whether events are actually collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer's epoch — the timestamp to pass back
    /// into [`Tracer::span`]. Returns 0 when disabled.
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    #[inline]
    #[allow(clippy::mut_from_ref)] // exclusive access per the sharding contract
    fn buffer(&self, worker: usize) -> Option<(&mut WorkerBuffer, usize)> {
        let inner = self.inner.as_deref()?;
        // SAFETY: per the sharding contract, `worker` is exclusively owned
        // by the calling thread while the operator runs.
        Some((unsafe { &mut *inner.buffers[worker].0.get() }, inner.capacity))
    }

    fn push(&self, worker: usize, event: TraceEvent) {
        if let Some((buf, capacity)) = self.buffer(worker) {
            if buf.events.len() < capacity {
                buf.events.push(event);
            } else {
                buf.dropped += 1;
            }
        }
    }

    /// Record a complete span that started at `start_nanos` (a value from
    /// [`Tracer::now`]) and ends now.
    #[inline]
    pub fn span(&self, worker: usize, name: &'static str, start_nanos: u64) {
        self.span_args(worker, name, start_nanos, &[]);
    }

    /// [`Tracer::span`] with up to two numeric args (extra args dropped).
    pub fn span_args(
        &self,
        worker: usize,
        name: &'static str,
        start_nanos: u64,
        args: &[(&'static str, u64)],
    ) {
        if self.inner.is_none() {
            return;
        }
        let end = self.now();
        let mut packed = [None; MAX_ARGS];
        for (slot, &kv) in packed.iter_mut().zip(args) {
            *slot = Some(kv);
        }
        self.push(
            worker,
            TraceEvent {
                name,
                start_nanos,
                dur_nanos: Some(end.saturating_sub(start_nanos)),
                args: packed,
            },
        );
    }

    /// Record an instant (zero-duration marker) event.
    pub fn instant(&self, worker: usize, name: &'static str, args: &[(&'static str, u64)]) {
        if self.inner.is_none() {
            return;
        }
        let now = self.now();
        let mut packed = [None; MAX_ARGS];
        for (slot, &kv) in packed.iter_mut().zip(args) {
            *slot = Some(kv);
        }
        self.push(worker, TraceEvent { name, start_nanos: now, dur_nanos: None, args: packed });
    }

    /// Total events recorded across workers. Must only be called after the
    /// recording threads have quiesced.
    pub fn event_count(&self) -> usize {
        self.for_each_buffer(|buf| buf.events.len()).into_iter().sum()
    }

    /// Events dropped to the per-worker capacity bound.
    pub fn dropped_count(&self) -> u64 {
        self.for_each_buffer(|buf| buf.dropped).into_iter().sum()
    }

    /// Events dropped per worker (empty when disabled). A nonzero entry
    /// means that worker's timeline is truncated — raise the capacity via
    /// `--trace-capacity`/[`Tracer::enabled`] to capture the full run.
    pub fn dropped_counts(&self) -> Vec<u64> {
        self.for_each_buffer(|buf| buf.dropped)
    }

    fn for_each_buffer<R>(&self, mut f: impl FnMut(&WorkerBuffer) -> R) -> Vec<R> {
        match self.inner.as_deref() {
            None => Vec::new(),
            Some(inner) => inner
                .buffers
                .iter()
                // SAFETY: quiescence is the caller's contract; we only read.
                .map(|b| f(unsafe { &*b.0.get() }))
                .collect(),
        }
    }

    /// Render all buffers as a Chrome trace-event JSON document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ns", ...}`. Load the
    /// result in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    /// Must only be called after the recording threads have quiesced.
    pub fn to_chrome_json(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return JsonValue::obj([("traceEvents", JsonValue::Array(Vec::new()))])
                .to_string_compact();
        };
        let mut events: Vec<JsonValue> = Vec::new();
        // Thread-name metadata rows so Perfetto labels lanes "worker N".
        for tid in 0..inner.buffers.len() {
            events.push(JsonValue::Object(vec![
                ("name".to_string(), JsonValue::str("thread_name")),
                ("ph".to_string(), JsonValue::str("M")),
                ("pid".to_string(), JsonValue::U64(1)),
                ("tid".to_string(), JsonValue::U64(tid as u64)),
                (
                    "args".to_string(),
                    JsonValue::obj([("name", JsonValue::Str(format!("worker {tid}")))]),
                ),
            ]));
        }
        let mut dropped = 0u64;
        let mut dropped_by_worker = Vec::with_capacity(inner.buffers.len());
        for (tid, buffer) in inner.buffers.iter().enumerate() {
            // SAFETY: quiescence is the caller's contract; we only read.
            let buffer = unsafe { &*buffer.0.get() };
            dropped += buffer.dropped;
            dropped_by_worker.push(JsonValue::U64(buffer.dropped));
            events.extend(buffer.events.iter().map(|e| e.to_json(tid)));
        }
        JsonValue::obj([
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", JsonValue::str("ns")),
            ("droppedEvents", JsonValue::U64(dropped)),
            ("droppedEventsByWorker", JsonValue::Array(dropped_by_worker)),
        ])
        .to_string_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        let s = t.now();
        t.span(0, "morsel", s);
        t.instant(0, "seal", &[]);
        assert_eq!(t.event_count(), 0);
        let parsed = crate::json::parse(&t.to_chrome_json()).unwrap();
        assert_eq!(parsed.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn spans_round_trip_through_chrome_json() {
        let t = Tracer::enabled(2, 16);
        let s0 = t.now();
        t.span_args(0, "morsel", s0, &[("rows", 4096)]);
        t.instant(1, "switch_to_partitioning", &[("alpha_x100", 250)]);
        assert_eq!(t.event_count(), 2);

        let parsed = crate::json::parse(&t.to_chrome_json()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata rows (thread names) + 2 recorded events.
        assert_eq!(events.len(), 4);

        let morsel = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("morsel"))
            .expect("morsel span present");
        assert_eq!(morsel.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(morsel.get("tid").unwrap().as_u64(), Some(0));
        assert!(morsel.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(morsel.get("args").unwrap().get("rows").unwrap().as_u64(), Some(4096));

        let switch = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("switch_to_partitioning"))
            .expect("instant present");
        assert_eq!(switch.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(switch.get("tid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn buffers_are_bounded() {
        let t = Tracer::enabled(2, 4);
        for _ in 0..10 {
            t.instant(0, "e", &[]);
        }
        t.instant(1, "e", &[]);
        assert_eq!(t.event_count(), 5);
        assert_eq!(t.dropped_count(), 6);
        assert_eq!(t.dropped_counts(), vec![6, 0]);
        let parsed = crate::json::parse(&t.to_chrome_json()).unwrap();
        assert_eq!(parsed.get("droppedEvents").unwrap().as_u64(), Some(6));
        let by_worker = parsed.get("droppedEventsByWorker").unwrap().as_array().unwrap();
        assert_eq!(by_worker.len(), 2);
        assert_eq!(by_worker[0].as_u64(), Some(6));
        assert_eq!(by_worker[1].as_u64(), Some(0));
    }

    #[test]
    fn timestamps_are_monotone_per_worker() {
        let t = Tracer::enabled(1, 64);
        for _ in 0..5 {
            let s = t.now();
            t.span(0, "step", s);
        }
        let starts =
            t.for_each_buffer(|b| b.events.iter().map(|e| e.start_nanos).collect::<Vec<_>>());
        for w in starts[0].windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
