//! Live progress: a lock-free gauge the workers update at coarse
//! boundaries, and a background sampler thread that turns it into
//! heartbeat lines.
//!
//! The [`crate::Recorder`]'s shards are plain `UnsafeCell` memory that may
//! only be read after quiescence — a live sampler must not touch them. The
//! [`ProgressGauge`] is the concurrent mirror: one cache-padded pair of
//! relaxed atomics per worker (row count, packed phase/level), updated
//! once per phase boundary rather than per row, so the hot path cost is a
//! couple of relaxed stores per block. The [`ProgressSampler`] owns a
//! thread that reads the gauge every interval and emits one line per tick
//! through a pluggable sink (stderr by default); dropping the sampler —
//! including during a panic unwind — signals and joins the thread.

use crate::profile::Phase;
use crate::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct GaugeCell {
    /// Rows consumed by this worker so far.
    rows: AtomicU64,
    /// Packed current position: `(level + 1) << 8 | (phase + 1)`; 0 = idle.
    state: AtomicU64,
}

struct GaugeInner {
    cells: Vec<CachePadded<GaugeCell>>,
}

/// Cheap cloneable handle to the per-worker progress cells, or a no-op
/// when built with [`ProgressGauge::disabled`]. Unlike the recorder this
/// is safely concurrent: workers store, the sampler loads, all relaxed.
#[derive(Clone)]
pub struct ProgressGauge {
    inner: Option<Arc<GaugeInner>>,
}

impl ProgressGauge {
    /// A gauge whose every operation is a null check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A gauge with one cell per worker.
    pub fn enabled(workers: usize) -> Self {
        let cells = (0..workers.max(1))
            .map(|_| CachePadded(GaugeCell { rows: AtomicU64::new(0), state: AtomicU64::new(0) }))
            .collect();
        Self { inner: Some(Arc::new(GaugeInner { cells })) }
    }

    /// Whether progress is actually tracked.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Publish worker `worker`'s current position.
    #[inline]
    pub fn set_state(&self, worker: usize, level: u32, phase: Phase) {
        if let Some(inner) = self.inner.as_deref() {
            let packed = ((u64::from(level) + 1) << 8) | (phase as u64 + 1);
            // ORDERING: Relaxed — the gauge is an advisory monitor; the
            // sampler tolerates stale or torn-across-cells views and no
            // other memory is published through it.
            inner.cells[worker].0.state.store(packed, Ordering::Relaxed);
        }
    }

    /// Add `n` rows consumed by worker `worker`.
    #[inline]
    pub fn add_rows(&self, worker: usize, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            // ORDERING: Relaxed — monotonic counter read only for display.
            inner.cells[worker].0.rows.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total rows consumed across workers (0 when disabled).
    pub fn total_rows(&self) -> u64 {
        match self.inner.as_deref() {
            None => 0,
            // ORDERING: Relaxed — display-only aggregate, staleness is fine.
            Some(inner) => inner.cells.iter().map(|c| c.0.rows.load(Ordering::Relaxed)).sum(),
        }
    }

    /// Current `(level, phase)` per worker; `None` entries are idle.
    pub fn worker_states(&self) -> Vec<Option<(u32, Phase)>> {
        match self.inner.as_deref() {
            None => Vec::new(),
            Some(inner) => inner
                .cells
                .iter()
                // ORDERING: Relaxed — display-only, staleness is fine.
                .map(|c| unpack(c.0.state.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

fn unpack(packed: u64) -> Option<(u32, Phase)> {
    if packed == 0 {
        return None;
    }
    let level = ((packed >> 8) - 1) as u32;
    let phase_idx = (packed & 0xff) as usize;
    Phase::ALL.get(phase_idx.wrapping_sub(1)).map(|&p| (level, p))
}

/// Probe returning `(outstanding_bytes, limit_bytes)` of the memory
/// budget, or `None` when the budget is unlimited.
pub type BudgetProbe = Box<dyn Fn() -> Option<(u64, u64)> + Send>;

/// Line sink for heartbeat output (stderr unless overridden for tests).
pub type ProgressSink = Box<dyn Fn(&str) + Send>;

struct Shutdown {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Background thread emitting one progress line per interval. Stops and
/// joins on drop, so an unwinding query tears it down deterministically.
pub struct ProgressSampler {
    shutdown: Arc<Shutdown>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressSampler {
    /// Start a sampler over `gauge`, emitting to stderr.
    pub fn start(gauge: ProgressGauge, interval: Duration, budget: Option<BudgetProbe>) -> Self {
        Self::start_tagged(gauge, interval, budget, None)
    }

    /// [`Self::start`] with a query tag: every heartbeat line leads with
    /// `[progress q<tag>]` so concurrently running queries on one shared
    /// runtime stay attributable. The tag is a plain string (the engine
    /// passes its query id) so this crate stays scheduler-agnostic.
    pub fn start_tagged(
        gauge: ProgressGauge,
        interval: Duration,
        budget: Option<BudgetProbe>,
        query: Option<String>,
    ) -> Self {
        Self::start_tagged_with_sink(
            gauge,
            interval,
            budget,
            query,
            Box::new(|line| eprintln!("{line}")),
        )
    }

    /// [`Self::start`] with a custom sink (used by tests to capture lines).
    pub fn start_with_sink(
        gauge: ProgressGauge,
        interval: Duration,
        budget: Option<BudgetProbe>,
        sink: ProgressSink,
    ) -> Self {
        Self::start_tagged_with_sink(gauge, interval, budget, None, sink)
    }

    /// [`Self::start_tagged`] with a custom sink.
    pub fn start_tagged_with_sink(
        gauge: ProgressGauge,
        interval: Duration,
        budget: Option<BudgetProbe>,
        query: Option<String>,
        sink: ProgressSink,
    ) -> Self {
        let shutdown = Arc::new(Shutdown { stop: Mutex::new(false), cv: Condvar::new() });
        let sd = Arc::clone(&shutdown);
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("hsa-progress".to_string())
            .spawn(move || sample_loop(&gauge, interval, budget, query.as_deref(), sink, &sd))
            .ok();
        Self { shutdown, handle }
    }

    /// Signal the thread and wait for it to exit. Also runs on drop.
    pub fn stop(&mut self) {
        if let Ok(mut stop) = self.shutdown.stop.lock() {
            *stop = true;
        }
        self.shutdown.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressSampler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn sample_loop(
    gauge: &ProgressGauge,
    interval: Duration,
    budget: Option<BudgetProbe>,
    query: Option<&str>,
    sink: ProgressSink,
    shutdown: &Shutdown,
) {
    let t0 = Instant::now();
    let mut prev_rows = 0u64;
    let mut prev_t = t0;
    loop {
        {
            let Ok(guard) = shutdown.stop.lock() else { return };
            let Ok((guard, _timed_out)) = shutdown.cv.wait_timeout_while(guard, interval, |s| !*s)
            else {
                return;
            };
            if *guard {
                return;
            }
        }
        let now = Instant::now();
        let rows = gauge.total_rows();
        let dt = now.duration_since(prev_t).as_secs_f64().max(1e-9);
        let rate = (rows.saturating_sub(prev_rows)) as f64 / dt;
        prev_rows = rows;
        prev_t = now;
        sink(&heartbeat(
            t0.elapsed(),
            rows,
            rate,
            &gauge.worker_states(),
            budget.as_deref(),
            query,
        ));
    }
}

fn heartbeat(
    elapsed: Duration,
    rows: u64,
    rate: f64,
    states: &[Option<(u32, Phase)>],
    budget: Option<&(dyn Fn() -> Option<(u64, u64)> + Send)>,
    query: Option<&str>,
) -> String {
    use std::fmt::Write as _;
    let mut line = match query {
        Some(q) => format!("[progress q{q}]"),
        None => "[progress]".to_string(),
    };
    let _ = write!(
        line,
        " {:6.1}s  {} rows  {}/s",
        elapsed.as_secs_f64(),
        fmt_count(rows),
        fmt_count(rate as u64)
    );
    // Summarize active workers as "phase@level ×count" groups.
    let mut groups: Vec<((u32, Phase), usize)> = Vec::new();
    for s in states.iter().flatten() {
        match groups.iter_mut().find(|(k, _)| k == s) {
            Some((_, n)) => *n += 1,
            None => groups.push((*s, 1)),
        }
    }
    if groups.is_empty() {
        line.push_str("  idle");
    } else {
        line.push_str("  ");
        for (i, ((level, phase), n)) in groups.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{}@L{level}", phase.label());
            if *n > 1 {
                let _ = write!(line, "×{n}");
            }
        }
    }
    if let Some((outstanding, limit)) = budget.and_then(|probe| probe()) {
        let _ = write!(
            line,
            "  budget {:.1}/{:.1} MiB",
            outstanding as f64 / (1u64 << 20) as f64,
            limit as f64 / (1u64 << 20) as f64
        );
    }
    line
}

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_gauge_is_inert() {
        let g = ProgressGauge::disabled();
        g.set_state(0, 1, Phase::Seal);
        g.add_rows(0, 100);
        assert!(!g.is_enabled());
        assert_eq!(g.total_rows(), 0);
        assert!(g.worker_states().is_empty());
    }

    #[test]
    fn gauge_tracks_rows_and_states_across_threads() {
        let g = ProgressGauge::enabled(3);
        std::thread::scope(|s| {
            for w in 0..3usize {
                let g = g.clone();
                s.spawn(move || {
                    g.set_state(w, w as u32, Phase::HashInsert);
                    for _ in 0..100 {
                        g.add_rows(w, 10);
                    }
                });
            }
        });
        assert_eq!(g.total_rows(), 3000);
        let states = g.worker_states();
        assert_eq!(states.len(), 3);
        for (w, s) in states.iter().enumerate() {
            assert_eq!(*s, Some((w as u32, Phase::HashInsert)));
        }
    }

    #[test]
    fn state_roundtrips_every_phase_and_level_zero() {
        let g = ProgressGauge::enabled(1);
        for &p in Phase::ALL {
            g.set_state(0, 0, p);
            assert_eq!(g.worker_states()[0], Some((0, p)));
        }
    }

    #[test]
    fn sampler_emits_lines_and_joins_on_stop() {
        let g = ProgressGauge::enabled(2);
        g.add_rows(0, 1234);
        g.set_state(0, 0, Phase::HashInsert);
        g.set_state(1, 0, Phase::HashInsert);
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let mut sampler = ProgressSampler::start_with_sink(
            g.clone(),
            Duration::from_millis(5),
            Some(Box::new(|| Some((1 << 20, 4 << 20)))),
            Box::new(move |line| {
                if let Ok(mut v) = sink_lines.lock() {
                    v.push(line.to_string());
                }
            }),
        );
        // Wait for at least one tick.
        for _ in 0..200 {
            if !lines.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let lines = lines.lock().unwrap();
        assert!(!lines.is_empty(), "sampler never ticked");
        let line = &lines[0];
        assert!(line.contains("rows"), "line: {line}");
        assert!(line.contains("hash_insert@L0×2"), "line: {line}");
        assert!(line.contains("budget 1.0/4.0 MiB"), "line: {line}");
    }

    #[test]
    fn sampler_shuts_down_on_drop_during_panic() {
        let g = ProgressGauge::enabled(1);
        let ticks = Arc::new(AtomicU64::new(0));
        let sink_ticks = Arc::clone(&ticks);
        let result = std::panic::catch_unwind(move || {
            let _sampler = ProgressSampler::start_with_sink(
                g,
                Duration::from_millis(2),
                None,
                Box::new(move |_| {
                    sink_ticks.fetch_add(1, Ordering::Relaxed);
                }),
            );
            std::thread::sleep(Duration::from_millis(10));
            panic!("boom");
        });
        assert!(result.is_err());
        // The unwinding drop joined the thread; no further ticks arrive.
        let after = ticks.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ticks.load(Ordering::Relaxed), after);
    }

    #[test]
    fn heartbeat_formats_idle_and_active() {
        let idle = heartbeat(Duration::from_secs(1), 0, 0.0, &[None, None], None, None);
        assert!(idle.contains("idle"), "line: {idle}");
        let active = heartbeat(
            Duration::from_secs(2),
            20_000_000,
            5e6,
            &[Some((1, Phase::Partition)), None],
            None,
            None,
        );
        assert!(active.contains("20.0M rows"), "line: {active}");
        assert!(active.contains("5.0M/s"), "line: {active}");
        assert!(active.contains("partition@L1"), "line: {active}");
    }

    #[test]
    fn heartbeat_carries_the_query_tag() {
        let line = heartbeat(Duration::from_secs(1), 10, 10.0, &[None], None, Some("42"));
        assert!(line.starts_with("[progress q42]"), "line: {line}");
        let untagged = heartbeat(Duration::from_secs(1), 10, 10.0, &[None], None, None);
        assert!(untagged.starts_with("[progress]"), "line: {untagged}");
    }

    #[test]
    fn tagged_sampler_emits_tagged_lines() {
        let g = ProgressGauge::enabled(1);
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let mut sampler = ProgressSampler::start_tagged_with_sink(
            g,
            Duration::from_millis(5),
            None,
            Some("7".to_string()),
            Box::new(move |line| {
                if let Ok(mut v) = sink_lines.lock() {
                    v.push(line.to_string());
                }
            }),
        );
        for _ in 0..200 {
            if !lines.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let lines = lines.lock().unwrap();
        assert!(!lines.is_empty(), "sampler never ticked");
        assert!(lines[0].starts_with("[progress q7]"), "line: {}", lines[0]);
    }
}
