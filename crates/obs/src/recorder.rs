//! The per-worker sharded metrics recorder.
//!
//! One shard per worker, each a cache-line-padded block of plain `u64`
//! counters and [`Histogram`]s. Recording is a handful of unsynchronized
//! adds into the worker's own shard — the design the paper's own
//! per-thread hash tables use, applied to metrics. Shards are merged into
//! one [`MetricsSnapshot`] after the operator has quiesced.
//!
//! A disabled recorder carries no shards; every recording call is a single
//! null check, so instrumented code needs no `if enabled` of its own.

use crate::hist::Histogram;
use crate::json::JsonValue;
use crate::profile::{Phase, PhaseCell, PROFILE_LEVELS};
use crate::CachePadded;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Per-switch α samples kept verbatim per worker; later switches are still
/// counted in the aggregate sum/count once the list is full.
const MAX_ALPHAS_PER_WORKER: usize = 1024;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Copy, Clone, Debug, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of variants.
            pub const COUNT: usize = $name::ALL.len();

            /// Stable snake_case label used in reports.
            pub fn label(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }
        }
    };
}

metric_enum! {
    /// Monotonic per-worker counters.
    Counter {
        /// Level-0 morsels this worker claimed.
        MorselsClaimed => "morsels_claimed",
        /// Hash tables sealed (full tables + final flushes).
        TablesSealed => "tables_sealed",
        /// Adaptive switches hashing → partitioning.
        SwitchesToPartitioning => "switches_to_partitioning",
        /// Adaptive switches partitioning → hashing (budget exhausted).
        SwitchesToHashing => "switches_to_hashing",
        /// Buckets merged by the growable fallback table.
        FallbackMerges => "fallback_merges",
        /// Rows consumed by the HASHING routine.
        HashRows => "hash_rows",
        /// Rows consumed by the PARTITIONING routine.
        PartRows => "part_rows",
        /// Hash-table key inserts (new + hit).
        TableInserts => "table_inserts",
        /// Total linear-probe steps beyond the home slot.
        ProbeSteps => "probe_steps",
        /// Software-write-combining cache lines flushed.
        SwcFlushes => "swc_flushes",
        /// Bytes moved through the SWC flush path (non-temporal when
        /// streaming stores are enabled).
        SwcFlushBytes => "swc_flush_bytes",
        /// Memory reservations denied by the budget (including denials
        /// absorbed by degradation).
        BudgetDenials => "budget_denials",
        /// Degradations taken under memory pressure: tables allocated
        /// smaller than configured, or hashing replaced by partitioning.
        BudgetDowngrades => "budget_downgrades",
        /// Tasks that observed cancellation (or a prior failure) and bailed
        /// out without processing their work.
        Cancellations => "cancellations",
        /// Worker panics contained by the scope and surfaced as errors.
        ContainedPanics => "contained_panics",
        /// Rows whose HASHING hot loops ran through the batched
        /// (prefetch-pipelined / SIMD) kernels.
        KernelBatchedRows => "kernel_batched_rows",
        /// Rows whose HASHING hot loops ran through the scalar reference
        /// kernels (forced via `--kernel scalar` or `HSA_KERNEL`).
        KernelScalarRows => "kernel_scalar_rows",
        /// Runs flushed to the spill directory after a denied reservation
        /// was downgraded to out-of-core storage.
        SpilledRuns => "spilled_runs",
        /// Bytes written to spill files.
        SpilledBytes => "spilled_bytes",
        /// Spilled runs read back into memory for consumption.
        RestoredRuns => "restored_runs",
        /// Bytes read back from spill files.
        RestoredBytes => "restored_bytes",
        /// Spill writes re-attempted after a transient I/O error.
        SpillRetries => "spill_retries",
        /// Spill restores re-attempted after a transient I/O error.
        RestoreRetries => "restore_retries",
        /// Spill operations abandoned (permanent error, corruption, or
        /// retries exhausted).
        SpillAbandons => "spill_abandons",
        /// Orphaned spill files of dead processes reclaimed when the
        /// spill directory was opened.
        SpillReclaimedFiles => "spill_reclaimed_files",
        /// Spill-space reservations denied by the disk budget.
        DiskBudgetDenials => "disk_budget_denials",
        /// Bytes spill files actually occupied on disk after per-extent
        /// compression (compare with `spilled_bytes`).
        SpillEncodedBytes => "spill_encoded_bytes",
        /// Background spill I/O nanoseconds that ran concurrently with
        /// compute (worker time minus compute-thread wait time).
        OverlappedIoNanos => "overlapped_io_nanos",
        /// Nanoseconds compute threads spent blocked on in-flight
        /// background spill I/O.
        SpillIoWaitNanos => "spill_io_wait_nanos",
    }
}

metric_enum! {
    /// Per-worker log₂ histograms.
    Hist {
        /// Probe steps beyond the home slot, per insert (§4.1: at 25% fill
        /// collisions should be "very rare or even non-existing").
        ProbeLen => "probe_len",
        /// Distance from home slot at which a *new* key landed.
        BlockDisplacement => "block_displacement",
        /// Occupied-slot percentage of the table at seal time.
        SealFillPct => "seal_fill_pct",
        /// Rows per level-0 morsel processed by this worker.
        MorselRows => "morsel_rows",
        /// Per-digit skew of one partitioning pass: largest partition's
        /// row count as a percentage of the mean (100 = perfectly even).
        PartitionSkewPct => "partition_skew_pct",
        /// Nanoseconds spent writing one run to the spill store.
        SpillNanos => "spill_nanos",
        /// Nanoseconds spent reading one spilled run back.
        RestoreNanos => "restore_nanos",
    }
}

/// One worker's metric cells. Plain data; merged at snapshot time.
#[derive(Clone, Debug)]
pub(crate) struct WorkerShard {
    counters: [u64; Counter::COUNT],
    hists: [Histogram; Hist::COUNT],
    phases: [[PhaseCell; Phase::COUNT]; PROFILE_LEVELS],
    alphas: Vec<f64>,
    alpha_count: u64,
    alpha_sum: f64,
}

impl Default for WorkerShard {
    fn default() -> Self {
        Self {
            counters: [0; Counter::COUNT],
            hists: std::array::from_fn(|_| Histogram::new()),
            phases: [[PhaseCell::default(); Phase::COUNT]; PROFILE_LEVELS],
            alphas: Vec::new(),
            alpha_count: 0,
            alpha_sum: 0.0,
        }
    }
}

struct Inner {
    shards: Vec<CachePadded<UnsafeCell<WorkerShard>>>,
}

// SAFETY: shard `i` is only written by the thread currently acting as
// worker `i` (the crate-level sharding contract), and `snapshot` reads
// only after those threads have quiesced.
unsafe impl Sync for Inner {}
unsafe impl Send for Inner {}

/// Cheap cloneable handle to the sharded metrics, or a no-op when built
/// with [`Recorder::disabled`].
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder whose every operation is a null check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recorder with one shard per worker.
    pub fn enabled(workers: usize) -> Self {
        let shards = (0..workers.max(1))
            .map(|_| CachePadded(UnsafeCell::new(WorkerShard::default())))
            .collect();
        Self { inner: Some(Arc::new(Inner { shards })) }
    }

    /// Whether metrics are actually collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of shards (0 when disabled).
    pub fn workers(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.shards.len())
    }

    #[inline]
    #[allow(clippy::mut_from_ref)] // exclusive access per the sharding contract
    fn shard(&self, worker: usize) -> Option<&mut WorkerShard> {
        let inner = self.inner.as_deref()?;
        // SAFETY: per the sharding contract, `worker` is exclusively owned
        // by the calling thread while the operator runs.
        Some(unsafe { &mut *inner.shards[worker].0.get() })
    }

    /// Add `n` to counter `c` of `worker`.
    #[inline]
    pub fn add(&self, worker: usize, c: Counter, n: u64) {
        if let Some(shard) = self.shard(worker) {
            shard.counters[c as usize] += n;
        }
    }

    /// Record `value` into histogram `h` of `worker`.
    #[inline]
    pub fn observe(&self, worker: usize, h: Hist, value: u64) {
        if let Some(shard) = self.shard(worker) {
            shard.hists[h as usize].record(value);
        }
    }

    /// Fold a locally collected histogram into histogram `h` of `worker`
    /// (used to flush per-table collectors at seal time).
    pub fn merge_hist(&self, worker: usize, h: Hist, other: &Histogram) {
        if let Some(shard) = self.shard(worker) {
            shard.hists[h as usize].merge(other);
        }
    }

    /// Fold `delta` into the `(level, phase)` cell of `worker`. Levels
    /// beyond [`PROFILE_LEVELS`] clamp into the last slot.
    #[inline]
    pub fn phase(&self, worker: usize, level: u32, phase: Phase, delta: PhaseCell) {
        if let Some(shard) = self.shard(worker) {
            let level = (level as usize).min(PROFILE_LEVELS - 1);
            shard.phases[level][phase as usize].add(&delta);
        }
    }

    /// Record the reduction factor observed at one adaptive switch.
    #[inline]
    pub fn record_alpha(&self, worker: usize, alpha: f64) {
        if let Some(shard) = self.shard(worker) {
            if shard.alphas.len() < MAX_ALPHAS_PER_WORKER {
                shard.alphas.push(alpha);
            }
            shard.alpha_count += 1;
            shard.alpha_sum += alpha;
        }
    }

    /// Merge all shards into a snapshot. Must only be called after the
    /// recording threads have quiesced. A disabled recorder yields an
    /// empty (all-zero) snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = self.inner.as_deref() else {
            return MetricsSnapshot::default();
        };
        // SAFETY: quiescence is the caller's contract; we only read.
        let workers: Vec<WorkerSnapshot> = inner
            .shards
            .iter()
            .map(|s| WorkerSnapshot { shard: unsafe { &*s.0.get() }.clone() })
            .collect();
        MetricsSnapshot { workers }
    }
}

/// Immutable copy of one worker's shard.
#[derive(Clone, Debug, Default)]
pub struct WorkerSnapshot {
    shard: WorkerShard,
}

impl WorkerSnapshot {
    /// Value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.shard.counters[c as usize]
    }

    /// Histogram `h`.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.shard.hists[h as usize]
    }

    /// The `(level, phase)` profiling cell. Levels beyond
    /// [`PROFILE_LEVELS`] clamp into the last slot.
    pub fn phase_cell(&self, level: usize, phase: Phase) -> &PhaseCell {
        &self.shard.phases[level.min(PROFILE_LEVELS - 1)][phase as usize]
    }

    /// Recorded per-switch α values (bounded; see [`Self::alpha_count`]).
    pub fn alphas(&self) -> &[f64] {
        &self.shard.alphas
    }

    /// Total switches that recorded an α (may exceed `alphas().len()`).
    pub fn alpha_count(&self) -> u64 {
        self.shard.alpha_count
    }

    /// Sum of all recorded α values.
    pub fn alpha_sum(&self) -> f64 {
        self.shard.alpha_sum
    }

    fn merge_from(&mut self, other: &WorkerSnapshot) {
        for (a, b) in self.shard.counters.iter_mut().zip(&other.shard.counters) {
            *a += b;
        }
        for (a, b) in self.shard.hists.iter_mut().zip(&other.shard.hists) {
            a.merge(b);
        }
        for (arow, brow) in self.shard.phases.iter_mut().zip(&other.shard.phases) {
            for (a, b) in arow.iter_mut().zip(brow) {
                a.add(b);
            }
        }
        let room = MAX_ALPHAS_PER_WORKER.saturating_sub(self.shard.alphas.len());
        self.shard.alphas.extend(other.shard.alphas.iter().take(room).copied());
        self.shard.alpha_count += other.shard.alpha_count;
        self.shard.alpha_sum += other.shard.alpha_sum;
    }

    /// True if every cell is zero.
    pub fn is_zero(&self) -> bool {
        self.shard.counters.iter().all(|&c| c == 0)
            && self.shard.hists.iter().all(Histogram::is_empty)
            && self.shard.phases.iter().flatten().all(PhaseCell::is_empty)
            && self.shard.alpha_count == 0
    }

    /// JSON object with one member per counter, histogram, and the α list.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(String, JsonValue)> = Counter::ALL
            .iter()
            .map(|&c| (c.label().to_string(), JsonValue::U64(self.counter(c))))
            .collect();
        for &h in Hist::ALL {
            pairs.push((h.label().to_string(), self.hist(h).to_json()));
        }
        let phases: Vec<(String, JsonValue)> = self
            .shard
            .phases
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().any(|c| !c.is_empty()))
            .map(|(level, row)| {
                let cells: Vec<(String, JsonValue)> = Phase::ALL
                    .iter()
                    .filter(|&&p| !row[p as usize].is_empty())
                    .map(|&p| (p.label().to_string(), row[p as usize].to_json()))
                    .collect();
                (format!("level{level}"), JsonValue::Object(cells))
            })
            .collect();
        pairs.push(("phases".to_string(), JsonValue::Object(phases)));
        pairs.push((
            "alphas".to_string(),
            JsonValue::Array(self.shard.alphas.iter().map(|&a| JsonValue::F64(a)).collect()),
        ));
        pairs.push(("alpha_count".to_string(), JsonValue::U64(self.shard.alpha_count)));
        pairs.push(("alpha_sum".to_string(), JsonValue::F64(self.shard.alpha_sum)));
        JsonValue::Object(pairs)
    }
}

/// All workers' metrics, frozen after a run.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Per-worker snapshots, index = worker index.
    pub workers: Vec<WorkerSnapshot>,
}

impl MetricsSnapshot {
    /// All workers folded into one.
    pub fn merged(&self) -> WorkerSnapshot {
        let mut out = WorkerSnapshot::default();
        for w in &self.workers {
            out.merge_from(w);
        }
        out
    }

    /// True if nothing was recorded anywhere (always true for a disabled
    /// recorder's snapshot).
    pub fn is_zero(&self) -> bool {
        self.workers.iter().all(WorkerSnapshot::is_zero)
    }

    /// JSON: `{"merged": {...}, "workers": [{...}, ...]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("merged", self.merged().to_json()),
            (
                "workers",
                JsonValue::Array(self.workers.iter().map(WorkerSnapshot::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_all_zero() {
        let r = Recorder::disabled();
        r.add(0, Counter::HashRows, 100);
        r.observe(0, Hist::ProbeLen, 5);
        r.record_alpha(0, 3.0);
        assert!(!r.is_enabled());
        assert!(r.snapshot().is_zero());
        assert_eq!(r.snapshot().workers.len(), 0);
    }

    #[test]
    fn sharded_counts_merge() {
        let r = Recorder::enabled(3);
        r.add(0, Counter::HashRows, 10);
        r.add(1, Counter::HashRows, 20);
        r.add(2, Counter::PartRows, 5);
        r.observe(1, Hist::ProbeLen, 2);
        r.record_alpha(2, 1.5);
        r.record_alpha(2, 2.5);
        let snap = r.snapshot();
        assert_eq!(snap.workers.len(), 3);
        assert_eq!(snap.workers[0].counter(Counter::HashRows), 10);
        let m = snap.merged();
        assert_eq!(m.counter(Counter::HashRows), 30);
        assert_eq!(m.counter(Counter::PartRows), 5);
        assert_eq!(m.hist(Hist::ProbeLen).count(), 1);
        assert_eq!(m.alpha_count(), 2);
        assert_eq!(m.alphas(), &[1.5, 2.5]);
        assert!((m.alpha_sum() - 4.0).abs() < 1e-12);
        assert!(!snap.is_zero());
    }

    #[test]
    fn parallel_workers_record_without_interference() {
        let r = Recorder::enabled(4);
        std::thread::scope(|s| {
            for w in 0..4usize {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        r.add(w, Counter::TableInserts, 1);
                        r.observe(w, Hist::ProbeLen, i % 7);
                    }
                });
            }
        });
        let snap = r.snapshot();
        for w in &snap.workers {
            assert_eq!(w.counter(Counter::TableInserts), 10_000);
            assert_eq!(w.hist(Hist::ProbeLen).count(), 10_000);
        }
        assert_eq!(snap.merged().counter(Counter::TableInserts), 40_000);
    }

    #[test]
    fn alpha_list_is_bounded() {
        let r = Recorder::enabled(1);
        for i in 0..(MAX_ALPHAS_PER_WORKER + 100) {
            r.record_alpha(0, i as f64);
        }
        let m = r.snapshot().merged();
        assert_eq!(m.alphas().len(), MAX_ALPHAS_PER_WORKER);
        assert_eq!(m.alpha_count(), (MAX_ALPHAS_PER_WORKER + 100) as u64);
    }

    #[test]
    fn phase_cells_shard_and_merge() {
        let r = Recorder::enabled(2);
        let d = |nanos, rows_in| PhaseCell { nanos, calls: 1, rows_in, rows_out: 0, bytes: 0 };
        r.phase(0, 0, Phase::HashInsert, d(100, 1000));
        r.phase(1, 0, Phase::HashInsert, d(50, 500));
        r.phase(0, 3, Phase::Restore, d(9, 0));
        let snap = r.snapshot();
        assert_eq!(snap.workers[0].phase_cell(0, Phase::HashInsert).nanos, 100);
        assert_eq!(snap.workers[1].phase_cell(0, Phase::HashInsert).rows_in, 500);
        let m = snap.merged();
        assert_eq!(m.phase_cell(0, Phase::HashInsert).nanos, 150);
        assert_eq!(m.phase_cell(0, Phase::HashInsert).calls, 2);
        assert_eq!(m.phase_cell(3, Phase::Restore).nanos, 9);
        assert!(!snap.is_zero());

        let text = snap.to_json().to_string_pretty(2);
        let parsed = crate::json::parse(&text).unwrap();
        let phases = parsed.get("merged").unwrap().get("phases").unwrap();
        let cell = phases.get("level0").unwrap().get("hash_insert").unwrap();
        assert_eq!(cell.get("rows_in").unwrap().as_u64(), Some(1500));
        assert!(phases.get("level1").is_none(), "empty levels are omitted");
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in Counter::ALL {
            assert!(seen.insert(c.label()), "dup {}", c.label());
        }
        for &h in Hist::ALL {
            assert!(seen.insert(h.label()), "dup {}", h.label());
        }
    }

    #[test]
    fn snapshot_json_is_valid() {
        let r = Recorder::enabled(2);
        r.add(0, Counter::SwcFlushes, 3);
        r.observe(1, Hist::SealFillPct, 25);
        let text = r.snapshot().to_json().to_string_pretty(2);
        let parsed = crate::json::parse(&text).unwrap();
        let merged = parsed.get("merged").unwrap();
        assert_eq!(merged.get("swc_flushes").unwrap().as_u64(), Some(3));
        assert_eq!(merged.get("seal_fill_pct").unwrap().get("count").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("workers").unwrap().as_array().unwrap().len(), 2);
    }
}
