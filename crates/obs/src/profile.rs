//! Phase-attributed profiling: the data model behind EXPLAIN ANALYZE.
//!
//! The operator's recursion is a tree — query → pass/level → phase — and
//! the paper's "hashing is sorting" claim is only checkable at runtime if
//! wall-clock and rows can be attributed to each node of that tree. Phase
//! time is recorded through the sharded [`crate::Recorder`] (one
//! [`PhaseCell`] per `(worker, level, phase)`), so the hot path pays the
//! same cost as any other metric: two clock reads per phase when enabled,
//! one null check when disabled.
//!
//! Phase cells store **exclusive** (self) time: when a seal spills a run
//! mid-flight, the spill's nanoseconds land in the `spill` cell and are
//! subtracted from the enclosing `seal` cell. Leaf times are therefore
//! disjoint and sum to the attributed total — the property the coverage
//! figure in [`ProfileTree::render`] reports.

use crate::json::JsonValue;
use crate::recorder::MetricsSnapshot;

/// Levels tracked by the profiler. The operator's recursion is bounded by
/// its hash-digit budget (8 levels today); one extra slot absorbs any
/// deeper attribution so a future depth bump degrades gracefully instead
/// of indexing out of bounds — [`crate::Recorder::phase`] clamps into it.
pub const PROFILE_LEVELS: usize = 9;

/// One phase of the recursive aggregation operator. Every nanosecond the
/// operator spends doing real work belongs to exactly one of these.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Inserting/folding rows into a fixed-size hash table (HASHING).
    HashInsert,
    /// Sealing a full or final table into ordered runs.
    Seal,
    /// Partitioning a run by the next hash digit (PARTITIONING).
    Partition,
    /// Merging a bucket's runs through the growable fallback table.
    GrowMerge,
    /// Writing a run to the spill store.
    Spill,
    /// Reading a spilled run back into memory.
    Restore,
    /// Emitting final groups into the output collector.
    Output,
    /// Task dispatch around the work phases: run restoration plumbing,
    /// view setup, table pooling, and intermediate-run teardown. Recorded
    /// by wrapping each morsel/bucket task in this phase — the nested-time
    /// accounting subtracts every inner phase, leaving exactly the
    /// driver's bookkeeping as its exclusive time, so the leaves still
    /// sum to the attributed total.
    Driver,
}

impl Phase {
    /// Every variant, in declaration order.
    pub const ALL: &'static [Phase] = &[
        Phase::HashInsert,
        Phase::Seal,
        Phase::Partition,
        Phase::GrowMerge,
        Phase::Spill,
        Phase::Restore,
        Phase::Output,
        Phase::Driver,
    ];

    /// Number of variants.
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable snake_case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::HashInsert => "hash_insert",
            Phase::Seal => "seal",
            Phase::Partition => "partition",
            Phase::GrowMerge => "grow_merge",
            Phase::Spill => "spill",
            Phase::Restore => "restore",
            Phase::Output => "output",
            Phase::Driver => "driver",
        }
    }
}

/// Accumulated cost of one `(level, phase)` cell — also the *delta* shape
/// passed to [`crate::Recorder::phase`] (with `calls: 1`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseCell {
    /// Exclusive (self) nanoseconds: child-phase time already subtracted.
    pub nanos: u64,
    /// Times the phase ran.
    pub calls: u64,
    /// Rows consumed.
    pub rows_in: u64,
    /// Rows produced (groups for seal/grow-merge/output).
    pub rows_out: u64,
    /// Bytes moved, where meaningful (spill/restore I/O, SWC flushes).
    pub bytes: u64,
}

impl PhaseCell {
    /// Fold `other` into `self`.
    pub fn add(&mut self, other: &PhaseCell) {
        self.nanos += other.nanos;
        self.calls += other.calls;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.bytes += other.bytes;
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.calls == 0 && self.nanos == 0
    }

    /// JSON object with one member per field.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("nanos", JsonValue::U64(self.nanos)),
            ("calls", JsonValue::U64(self.calls)),
            ("rows_in", JsonValue::U64(self.rows_in)),
            ("rows_out", JsonValue::U64(self.rows_out)),
            ("bytes", JsonValue::U64(self.bytes)),
        ])
    }
}

/// The merged phase tree of one run: query → level → phase, with wall
/// clock, thread count, and budget high-water alongside. Built from a
/// [`MetricsSnapshot`] after the operator has quiesced.
#[derive(Clone, Debug)]
pub struct ProfileTree {
    /// End-to-end wall clock of the query.
    pub wall_nanos: u64,
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Highest concurrently reserved byte count the memory budget saw
    /// (0 when the budget is unlimited).
    pub budget_high_water: u64,
    /// Nanoseconds of spill/restore I/O that ran on the store's
    /// background workers concurrently with compute (worker time minus
    /// the time compute threads spent blocked waiting on tickets). 0 with
    /// synchronous spill I/O (`io_threads: 0`) or no spilling.
    pub overlapped_io_nanos: u64,
    cells: [[PhaseCell; Phase::COUNT]; PROFILE_LEVELS],
}

impl ProfileTree {
    /// Merge the per-worker phase cells of `snap` into a tree.
    /// `overlapped_io_nanos` is the store-reported background I/O time
    /// that did not stall a compute thread (see the field's doc).
    pub fn build(
        snap: &MetricsSnapshot,
        wall_nanos: u64,
        threads: usize,
        budget_high_water: u64,
        overlapped_io_nanos: u64,
    ) -> Self {
        let mut cells = [[PhaseCell::default(); Phase::COUNT]; PROFILE_LEVELS];
        for w in &snap.workers {
            for (level, row) in cells.iter_mut().enumerate() {
                for &p in Phase::ALL {
                    row[p as usize].add(w.phase_cell(level, p));
                }
            }
        }
        Self { wall_nanos, threads, budget_high_water, overlapped_io_nanos, cells }
    }

    /// The merged cell of one `(level, phase)` node.
    pub fn cell(&self, level: usize, phase: Phase) -> &PhaseCell {
        &self.cells[level.min(PROFILE_LEVELS - 1)][phase as usize]
    }

    /// Exclusive nanoseconds attributed to one level across phases.
    pub fn level_nanos(&self, level: usize) -> u64 {
        self.cells[level.min(PROFILE_LEVELS - 1)].iter().map(|c| c.nanos).sum()
    }

    /// Total exclusive nanoseconds across all leaves.
    pub fn total_nanos(&self) -> u64 {
        (0..PROFILE_LEVELS).map(|l| self.level_nanos(l)).sum()
    }

    /// Nanoseconds compute threads spent in spill/restore phases across
    /// levels (submission, waiting on tickets, and synchronous I/O — not
    /// the background workers' own time).
    pub fn io_nanos(&self) -> u64 {
        (0..PROFILE_LEVELS)
            .map(|l| {
                self.cells[l][Phase::Spill as usize].nanos
                    + self.cells[l][Phase::Restore as usize].nanos
            })
            .sum()
    }

    /// Fraction of total spill I/O time hidden behind compute: overlapped
    /// background time over overlapped + compute-thread I/O time. 0.0
    /// when spill I/O is synchronous or absent; approaches 1.0 when the
    /// async pipeline hides nearly all of it.
    pub fn overlap_fraction(&self) -> f64 {
        let total = self.overlapped_io_nanos + self.io_nanos();
        if total == 0 {
            0.0
        } else {
            self.overlapped_io_nanos as f64 / total as f64
        }
    }

    /// Deepest level with any attribution, plus one (0 for an empty tree).
    pub fn levels_used(&self) -> usize {
        (0..PROFILE_LEVELS)
            .rev()
            .find(|&l| self.cells[l].iter().any(|c| !c.is_empty()))
            .map_or(0, |l| l + 1)
    }

    /// Leaf coverage: attributed leaf nanoseconds over the wall-clock
    /// budget (`wall × threads`). At `threads = 1` this is "what share of
    /// the query's wall clock the phase tree explains"; with more threads
    /// it also folds in scheduler idle time, so it doubles as a
    /// utilization figure.
    pub fn coverage(&self) -> f64 {
        let budget = self.wall_nanos.saturating_mul(self.threads.max(1) as u64);
        if budget == 0 {
            0.0
        } else {
            self.total_nanos() as f64 / budget as f64
        }
    }

    /// Render the indented operator tree. Deterministic for a given tree:
    /// level nodes in level order, phase leaves in [`Phase::ALL`] order,
    /// empty nodes omitted. Percentages are of the total attributed time.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total_nanos();
        let _ = writeln!(
            out,
            "query · wall {} · {} thread{} · {:.1}% of {}×wall attributed to leaf phases",
            fmt_nanos(self.wall_nanos),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            100.0 * self.coverage(),
            self.threads.max(1),
        );
        if self.budget_high_water > 0 {
            let _ = writeln!(out, "├─ budget high-water {}", fmt_bytes(self.budget_high_water));
        }
        let io = self.io_nanos();
        if io > 0 {
            let _ = writeln!(
                out,
                "├─ spill/restore io {} · overlap {:.0}%",
                fmt_nanos(io),
                100.0 * self.overlap_fraction()
            );
        }
        let levels = self.levels_used();
        for level in 0..levels {
            let ln = self.level_nanos(level);
            if self.cells[level].iter().all(PhaseCell::is_empty) {
                continue;
            }
            let last_level =
                (level + 1..levels).all(|l| self.cells[l].iter().all(PhaseCell::is_empty));
            let (tee, bar) = if last_level { ("└─", "  ") } else { ("├─", "│ ") };
            let _ = writeln!(out, "{tee} level {level} · {} · {}", fmt_nanos(ln), pct(ln, total));
            let present: Vec<Phase> = Phase::ALL
                .iter()
                .copied()
                .filter(|&p| !self.cells[level][p as usize].is_empty())
                .collect();
            for (i, p) in present.iter().enumerate() {
                let c = &self.cells[level][*p as usize];
                let leaf_tee = if i + 1 == present.len() { "└─" } else { "├─" };
                let _ = write!(
                    out,
                    "{bar} {leaf_tee} {} · {} · {} · {} calls",
                    p.label(),
                    fmt_nanos(c.nanos),
                    pct(c.nanos, total),
                    c.calls,
                );
                if c.rows_in > 0 || c.rows_out > 0 {
                    let _ = write!(out, " · rows {} → {}", c.rows_in, c.rows_out);
                }
                if *p == Phase::HashInsert && c.rows_out > 0 {
                    let _ = write!(out, " · α {:.2}", c.rows_in as f64 / c.rows_out as f64);
                }
                if c.bytes > 0 {
                    let _ = write!(out, " · {}", fmt_bytes(c.bytes));
                }
                out.push('\n');
            }
        }
        out
    }

    /// JSON view: merged `(level, phase)` cells plus the headline fields.
    /// Per-worker detail lives in the metrics snapshot's `phases` member.
    pub fn to_json(&self) -> JsonValue {
        let levels: Vec<JsonValue> = (0..self.levels_used())
            .filter(|&l| !self.cells[l].iter().all(PhaseCell::is_empty))
            .map(|l| {
                let phases: Vec<(String, JsonValue)> = Phase::ALL
                    .iter()
                    .filter(|&&p| !self.cells[l][p as usize].is_empty())
                    .map(|&p| (p.label().to_string(), self.cells[l][p as usize].to_json()))
                    .collect();
                JsonValue::obj([
                    ("level", JsonValue::U64(l as u64)),
                    ("nanos", JsonValue::U64(self.level_nanos(l))),
                    ("phases", JsonValue::Object(phases)),
                ])
            })
            .collect();
        JsonValue::obj([
            ("wall_nanos", JsonValue::U64(self.wall_nanos)),
            ("threads", JsonValue::U64(self.threads as u64)),
            ("attributed_nanos", JsonValue::U64(self.total_nanos())),
            ("coverage", JsonValue::F64(self.coverage())),
            ("budget_high_water_bytes", JsonValue::U64(self.budget_high_water)),
            ("io_nanos", JsonValue::U64(self.io_nanos())),
            ("overlapped_io_nanos", JsonValue::U64(self.overlapped_io_nanos)),
            ("spill_overlap_fraction", JsonValue::F64(self.overlap_fraction())),
            ("levels", JsonValue::Array(levels)),
        ])
    }
}

fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "0.0%".to_string()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / total as f64)
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2} s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2} ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2} µs", n as f64 / 1e3)
    } else {
        format!("{n} ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn delta(nanos: u64, rows_in: u64, rows_out: u64, bytes: u64) -> PhaseCell {
        PhaseCell { nanos, calls: 1, rows_in, rows_out, bytes }
    }

    #[test]
    fn labels_are_unique_and_all_is_complete() {
        let mut seen = std::collections::BTreeSet::new();
        for &p in Phase::ALL {
            assert!(seen.insert(p.label()), "dup {}", p.label());
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn build_merges_workers_and_levels_sum() {
        let r = Recorder::enabled(2);
        r.phase(0, 0, Phase::HashInsert, delta(100, 1000, 250, 0));
        r.phase(1, 0, Phase::HashInsert, delta(300, 3000, 750, 0));
        r.phase(0, 0, Phase::Seal, delta(50, 1000, 1000, 0));
        r.phase(1, 1, Phase::GrowMerge, delta(70, 500, 100, 0));
        let t = ProfileTree::build(&r.snapshot(), 1000, 2, 4096, 0);

        let hi = t.cell(0, Phase::HashInsert);
        assert_eq!(hi.nanos, 400);
        assert_eq!(hi.calls, 2);
        assert_eq!(hi.rows_in, 4000);
        assert_eq!(hi.rows_out, 1000);
        assert_eq!(t.level_nanos(0), 450);
        assert_eq!(t.level_nanos(1), 70);
        assert_eq!(t.total_nanos(), 520);
        assert_eq!(t.levels_used(), 2);
        assert_eq!(t.budget_high_water, 4096);
        // Level totals are sums of their leaves — the child ≤ parent
        // invariant holds by construction and stays checkable here.
        for level in 0..PROFILE_LEVELS {
            let leaf_sum: u64 = Phase::ALL.iter().map(|&p| t.cell(level, p).nanos).sum();
            assert_eq!(t.level_nanos(level), leaf_sum);
            assert!(leaf_sum <= t.total_nanos());
        }
    }

    #[test]
    fn deep_levels_clamp_into_the_last_slot() {
        let r = Recorder::enabled(1);
        r.phase(0, 200, Phase::Partition, delta(5, 10, 10, 0));
        let t = ProfileTree::build(&r.snapshot(), 100, 1, 0, 0);
        assert_eq!(t.cell(PROFILE_LEVELS - 1, Phase::Partition).nanos, 5);
        assert_eq!(t.cell(PROFILE_LEVELS + 7, Phase::Partition).nanos, 5);
    }

    #[test]
    fn coverage_is_leaf_time_over_wall_times_threads() {
        let r = Recorder::enabled(2);
        r.phase(0, 0, Phase::HashInsert, delta(900, 0, 0, 0));
        r.phase(1, 0, Phase::Partition, delta(500, 0, 0, 0));
        let t = ProfileTree::build(&r.snapshot(), 1000, 2, 0, 0);
        assert!((t.coverage() - 0.7).abs() < 1e-12);
        let empty = ProfileTree::build(&Recorder::disabled().snapshot(), 0, 1, 0, 0);
        assert_eq!(empty.coverage(), 0.0);
    }

    #[test]
    fn overlap_fraction_is_zero_for_synchronous_io() {
        let r = Recorder::enabled(1);
        r.phase(0, 0, Phase::Spill, delta(100, 50, 0, 4096));
        r.phase(0, 1, Phase::Restore, delta(60, 0, 50, 4096));
        let t = ProfileTree::build(&r.snapshot(), 1000, 1, 0, 0);
        assert_eq!(t.io_nanos(), 160);
        assert_eq!(t.overlap_fraction(), 0.0);
    }

    #[test]
    fn overlap_fraction_is_overlapped_over_total_io() {
        let r = Recorder::enabled(1);
        r.phase(0, 0, Phase::Spill, delta(100, 50, 0, 4096));
        r.phase(0, 1, Phase::Restore, delta(60, 0, 50, 4096));
        // 480 ns of background I/O ran while compute threads spent 160 ns
        // in the foreground phases: 480 / (480 + 160) = 75% hidden.
        let t = ProfileTree::build(&r.snapshot(), 1000, 1, 0, 480);
        assert_eq!(t.overlapped_io_nanos, 480);
        assert!((t.overlap_fraction() - 0.75).abs() < 1e-12);
        let json = t.to_json();
        assert_eq!(json.get("overlapped_io_nanos").and_then(|v| v.as_u64()), Some(480));
        // The render's io line shows the overlap share.
        assert!(t.render().contains("overlap 75%"), "render: {}", t.render());
    }

    #[test]
    fn render_golden() {
        // Timings are inputs, so the rendering is fully deterministic.
        let r = Recorder::enabled(1);
        r.phase(0, 0, Phase::HashInsert, delta(600_000, 8000, 2000, 0));
        r.phase(0, 0, Phase::Seal, delta(200_000, 2000, 2000, 0));
        r.phase(0, 1, Phase::Output, delta(200_000, 2000, 2000, 0));
        let t = ProfileTree::build(&r.snapshot(), 1_000_000, 1, 0, 0);
        let expected = "\
query · wall 1.00 ms · 1 thread · 100.0% of 1×wall attributed to leaf phases
├─ level 0 · 800.00 µs · 80.0%
│  ├─ hash_insert · 600.00 µs · 60.0% · 1 calls · rows 8000 → 2000 · α 4.00
│  └─ seal · 200.00 µs · 20.0% · 1 calls · rows 2000 → 2000
└─ level 1 · 200.00 µs · 20.0%
   └─ output · 200.00 µs · 20.0% · 1 calls · rows 2000 → 2000
";
        assert_eq!(t.render(), expected);
    }

    #[test]
    fn json_round_trips_and_omits_empty_cells() {
        let r = Recorder::enabled(1);
        r.phase(0, 0, Phase::HashInsert, delta(100, 10, 5, 0));
        let t = ProfileTree::build(&r.snapshot(), 500, 1, 123, 0);
        let parsed = crate::json::parse(&t.to_json().to_string_pretty(2)).unwrap();
        assert_eq!(parsed.get("wall_nanos").unwrap().as_u64(), Some(500));
        assert_eq!(parsed.get("budget_high_water_bytes").unwrap().as_u64(), Some(123));
        let levels = parsed.get("levels").unwrap().as_array().unwrap();
        assert_eq!(levels.len(), 1);
        let phases = levels[0].get("phases").unwrap();
        assert!(phases.get("hash_insert").is_some());
        assert!(phases.get("seal").is_none());
        assert_eq!(phases.get("hash_insert").unwrap().get("rows_in").unwrap().as_u64(), Some(10));
    }
}
