//! Observability core for the aggregation operator.
//!
//! The paper's claims live on *where time and rows go per pass* (Figures
//! 4, 5, 9) and on micro-behavior like probe lengths at 25% fill (§4.1)
//! and write-combining flushes (§4.2). This crate provides the shared
//! machinery every layer reports into:
//!
//! * [`Histogram`] — fixed-size log₂-bucketed histograms of `u64` samples,
//!   plain cells, mergeable;
//! * [`Recorder`] — per-worker **sharded** counters and histograms. Each
//!   worker writes plain `u64` cells in its own cache-line-padded shard
//!   (no hot-path atomics, no false sharing); shards are merged into a
//!   [`MetricsSnapshot`] once the operator has quiesced. A disabled
//!   recorder is a null check per call site;
//! * [`Tracer`] — bounded per-worker span buffers emitting Chrome
//!   trace-event JSON ([`Tracer::to_chrome_json`]) loadable in Perfetto;
//! * [`ProfileTree`] — the EXPLAIN ANALYZE phase tree (query → level →
//!   phase) aggregated from per-worker [`PhaseCell`]s recorded through
//!   the [`Recorder`];
//! * [`ProgressGauge`] / [`ProgressSampler`] — relaxed-atomic live
//!   progress cells plus the background heartbeat thread that reads them
//!   (the recorder's shards themselves must never be read live);
//! * [`json`] — a dependency-free JSON writer/parser used by every
//!   machine-readable report in the workspace.
//!
//! # Sharding contract
//!
//! [`Recorder`] and [`Tracer`] are indexed by *worker*: the caller must
//! ensure that a given worker index is only ever used from one thread at a
//! time (the work-stealing pool's `worker_index` gives exactly this), and
//! that snapshots/serialization happen only after those threads have
//! quiesced. This is the same contract under which the operator's own
//! per-worker hash tables are sound.

pub mod json;

mod hist;
mod profile;
mod progress;
mod recorder;
mod trace;

pub use hist::{Histogram, HIST_BUCKETS};
pub use profile::{Phase, PhaseCell, ProfileTree, PROFILE_LEVELS};
pub use progress::{BudgetProbe, ProgressGauge, ProgressSampler, ProgressSink};
pub use recorder::{Counter, Hist, MetricsSnapshot, Recorder, WorkerSnapshot};
pub use trace::{TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};

/// Pads a value to a cache line so per-worker shards never false-share.
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub T);
