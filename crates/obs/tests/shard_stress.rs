//! Concurrency stress for the sharded recorder and tracer: one thread per
//! worker shard hammering its own cells (the sharding contract), with the
//! merged snapshot checked for exact totals. Runs under plain `cargo test`
//! and in the ThreadSanitizer CI job — if the `UnsafeCell` sharding or the
//! cache-padding layout were wrong, concurrent writers would corrupt
//! adjacent shards and the balances below would drift.

use hsa_obs::{Counter, Hist, Recorder, Tracer};

const WORKERS: usize = 8;
#[cfg(not(miri))]
const OPS: u64 = 20_000;
/// Miri interprets every access; a few hundred ops per shard still proves
/// the sharding contract without minutes of interpretation.
#[cfg(miri)]
const OPS: u64 = 256;

#[test]
fn per_worker_recorder_shards_do_not_interfere() {
    let rec = Recorder::enabled(WORKERS);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let rec = &rec;
            s.spawn(move || {
                for i in 0..OPS {
                    rec.add(w, Counter::HashRows, 1);
                    rec.add(w, Counter::ProbeSteps, i % 3);
                    rec.observe(w, Hist::ProbeLen, i % 17);
                    if i % 64 == 0 {
                        rec.record_alpha(w, (w as f64) / (WORKERS as f64));
                    }
                }
            });
        }
    });
    let snap = rec.snapshot();
    let merged = snap.merged();
    // Exact balance: no lost or smeared updates across shards.
    assert_eq!(merged.counter(Counter::HashRows), WORKERS as u64 * OPS);
    let expected_steps: u64 = (0..OPS).map(|i| i % 3).sum();
    assert_eq!(merged.counter(Counter::ProbeSteps), WORKERS as u64 * expected_steps);
    assert_eq!(merged.hist(Hist::ProbeLen).count(), WORKERS as u64 * OPS);
    assert_eq!(merged.alpha_count(), WORKERS as u64 * OPS.div_ceil(64));
    // Untouched metrics stay zero — a smeared write would land somewhere.
    assert_eq!(merged.counter(Counter::SpilledRuns), 0);
    assert_eq!(merged.hist(Hist::SpillNanos).count(), 0);
}

#[test]
fn tracer_shards_account_for_every_event() {
    // Capacity below the emission count so the drop path is exercised too.
    let capacity = (OPS / 4) as usize;
    let tracer = Tracer::enabled(WORKERS, capacity);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let tracer = &tracer;
            s.spawn(move || {
                for i in 0..OPS {
                    let start = tracer.now();
                    if i % 2 == 0 {
                        tracer.span_args(w, "stress", start, &[("i", i)]);
                    } else {
                        tracer.instant(w, "tick", &[("i", i)]);
                    }
                }
            });
        }
    });
    // Recorded + dropped must equal emitted, exactly.
    let total = tracer.event_count() as u64 + tracer.dropped_count();
    assert_eq!(total, WORKERS as u64 * OPS);
    assert_eq!(tracer.event_count(), WORKERS * capacity);
    // The JSON renderer walks every shard after quiescence.
    let json = tracer.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn disabled_recorder_is_safe_under_the_same_load() {
    // The disabled fast path must stay a null check even when hammered
    // from many threads against arbitrary worker indices.
    let rec = Recorder::disabled();
    let tracer = Tracer::disabled();
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let (rec, tracer) = (&rec, &tracer);
            s.spawn(move || {
                for i in 0..OPS {
                    rec.add(w, Counter::HashRows, i);
                    tracer.instant(w, "noop", &[]);
                }
            });
        }
    });
    assert!(rec.snapshot().is_zero());
    assert_eq!(tracer.event_count(), 0);
}
