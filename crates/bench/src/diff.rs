//! Comparison of two bench JSON sidecars — the engine behind `bench_diff`.
//!
//! A sidecar (see [`crate::Sidecar`]) is `{"bench": name, "tables":
//! [{"columns": [...], "rows": [[cell, ...], ...]}]}`. The diff joins rows
//! on the first cell of each row (the sweep key: `log2(K)`, `budget x
//! output`, ...), so a smoke-sized fresh run can be compared against a
//! baseline recorded at full size — only the keys present in *both* files
//! are value-checked. Numeric cells pass when they are within a relative
//! tolerance of the baseline; everything else (bench name, table count,
//! column lists) must match exactly.
//!
//! Absolute nanosecond columns are meaningless across machines, so CI
//! compares the dimensionless ratio columns — bigger-is-better speedups
//! with `--one-sided` (`--cols "probe speedup,fold speedup"`),
//! smaller-is-better slowdowns with `--one-sided-above`
//! (`--cols slowdown`) — or, where no stable ratio exists, just the
//! structure (`--structure-only`).

use hsa_obs::json::{self, JsonValue};

/// What to compare and how loosely.
pub struct DiffOptions {
    /// Relative tolerance, in percent, for numeric cells: a fresh value
    /// passes when `|fresh - base| <= tol_pct/100 * max(|base|, 1e-9)`.
    pub tol_pct: f64,
    /// Only value-compare these columns (the row key, column 0, is always
    /// the join key). `None` compares every column.
    pub cols: Option<Vec<String>>,
    /// Only flag values *below* the baseline (bigger-is-better columns
    /// like speedups): fresh fails when `fresh < base - tol`. Improvements
    /// beyond the tolerance pass.
    pub one_sided: bool,
    /// Only flag values *above* the baseline (smaller-is-better columns
    /// like slowdowns): fresh fails when `fresh > base + tol`.
    /// Improvements beyond the tolerance pass. Setting this together with
    /// [`DiffOptions::one_sided`] bounds both directions, which is the
    /// two-sided default.
    pub one_sided_above: bool,
    /// Check only the shape: bench name, table count, column lists, and
    /// that every fresh table has rows. No value comparison.
    pub structure_only: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tol_pct: 50.0,
            cols: None,
            one_sided: false,
            one_sided_above: false,
            structure_only: false,
        }
    }
}

/// One parsed sidecar table.
struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<JsonValue>>,
}

/// Parse a sidecar document, validating the shape produced by
/// [`crate::Sidecar`].
fn parse_sidecar(label: &str, text: &str) -> Result<(String, Vec<Table>), String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: invalid JSON: {e}"))?;
    let bench = doc
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{label}: missing \"bench\" name"))?
        .to_string();
    let tables = doc
        .get("tables")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{label}: missing \"tables\" array"))?;
    let mut out = Vec::with_capacity(tables.len());
    for (ti, t) in tables.iter().enumerate() {
        let columns = t
            .get("columns")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{label}: table {ti}: missing \"columns\""))?
            .iter()
            .map(|c| c.as_str().unwrap_or_default().to_string())
            .collect();
        let rows = t
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{label}: table {ti}: missing \"rows\""))?
            .iter()
            .map(|r| r.as_array().map(<[JsonValue]>::to_vec))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| format!("{label}: table {ti}: rows must be arrays"))?;
        out.push(Table { columns, rows });
    }
    Ok((bench, out))
}

/// Render a cell for row-key matching and messages.
fn cell_str(v: &JsonValue) -> String {
    if let Some(u) = v.as_u64() {
        u.to_string()
    } else if let Some(f) = v.as_f64() {
        format!("{f}")
    } else if let Some(s) = v.as_str() {
        s.to_string()
    } else {
        v.to_string_compact()
    }
}

/// Compare two sidecar documents. Returns the list of human-readable
/// mismatches (empty ⇒ the fresh run is within tolerance), or `Err` when
/// either document cannot be parsed.
pub fn diff_sidecars(
    baseline: &str,
    fresh: &str,
    opts: &DiffOptions,
) -> Result<Vec<String>, String> {
    let (base_name, base_tables) = parse_sidecar("baseline", baseline)?;
    let (fresh_name, fresh_tables) = parse_sidecar("fresh", fresh)?;

    let mut bad = Vec::new();
    if base_name != fresh_name {
        bad.push(format!("bench name: baseline {base_name:?}, fresh {fresh_name:?}"));
    }
    if base_tables.len() != fresh_tables.len() {
        bad.push(format!(
            "table count: baseline {}, fresh {}",
            base_tables.len(),
            fresh_tables.len()
        ));
        return Ok(bad);
    }

    if let Some(cols) = &opts.cols {
        for c in cols {
            if !base_tables.iter().any(|t| t.columns.iter().any(|n| n == c)) {
                bad.push(format!("--cols: no column named {c:?} in the baseline"));
            }
        }
        if !bad.is_empty() {
            return Ok(bad);
        }
    }

    for (ti, (bt, ft)) in base_tables.iter().zip(&fresh_tables).enumerate() {
        if bt.columns != ft.columns {
            bad.push(format!(
                "table {ti}: columns differ: baseline {:?}, fresh {:?}",
                bt.columns, ft.columns
            ));
            continue;
        }
        if ft.rows.is_empty() {
            bad.push(format!("table {ti}: fresh run produced no rows"));
            continue;
        }
        if opts.structure_only {
            continue;
        }

        // Join on the row key (column 0); keys present on only one side are
        // expected when the fresh run is a smoke-sized sweep.
        let mut overlap = 0usize;
        for brow in &bt.rows {
            let key = match brow.first() {
                Some(k) => cell_str(k),
                None => continue,
            };
            let Some(frow) = ft.rows.iter().find(|r| r.first().is_some_and(|k| cell_str(k) == key))
            else {
                continue;
            };
            overlap += 1;
            for (ci, name) in bt.columns.iter().enumerate().skip(1) {
                if opts.cols.as_ref().is_some_and(|cs| !cs.iter().any(|c| c == name)) {
                    continue;
                }
                let (bc, fc) = match (brow.get(ci), frow.get(ci)) {
                    (Some(b), Some(f)) => (b, f),
                    _ => {
                        bad.push(format!("table {ti} row {key}: column {name:?} missing a cell"));
                        continue;
                    }
                };
                match (bc.as_f64(), fc.as_f64()) {
                    (Some(b), Some(f)) => {
                        let tol = opts.tol_pct / 100.0 * b.abs().max(1e-9);
                        let (fails, sign) = match (opts.one_sided, opts.one_sided_above) {
                            (true, false) => (f < b - tol, "-"),
                            (false, true) => (f > b + tol, "+"),
                            _ => ((f - b).abs() > tol, "±"),
                        };
                        if fails {
                            bad.push(format!(
                                "table {ti} row {key}: {name} = {f} vs baseline {b} \
                                 (tolerance {sign}{:.0}%)",
                                opts.tol_pct
                            ));
                        }
                    }
                    _ => {
                        if cell_str(bc) != cell_str(fc) {
                            bad.push(format!(
                                "table {ti} row {key}: {name} = {:?} vs baseline {:?}",
                                cell_str(fc),
                                cell_str(bc)
                            ));
                        }
                    }
                }
            }
        }
        if overlap == 0 {
            bad.push(format!("table {ti}: no row keys in common with the baseline"));
        }
    }
    Ok(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sidecar(bench: &str, columns: &str, rows: &str) -> String {
        format!("{{\"bench\": \"{bench}\", \"tables\": [{{\"columns\": [{columns}], \"rows\": [{rows}]}}]}}")
    }

    #[test]
    fn identical_files_pass() {
        let s = sidecar("k", "\"n\", \"x\"", "[12, 1.0], [16, 2.0]");
        assert!(diff_sidecars(&s, &s, &DiffOptions::default()).unwrap().is_empty());
    }

    #[test]
    fn within_tolerance_passes_and_beyond_fails() {
        let base = sidecar("k", "\"n\", \"x\"", "[12, 1.0]");
        let close = sidecar("k", "\"n\", \"x\"", "[12, 1.4]");
        let far = sidecar("k", "\"n\", \"x\"", "[12, 1.6]");
        let opts = DiffOptions::default(); // ±50%
        assert!(diff_sidecars(&base, &close, &opts).unwrap().is_empty());
        let bad = diff_sidecars(&base, &far, &opts).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("1.6"), "{bad:?}");
    }

    #[test]
    fn smoke_sized_fresh_run_only_compares_shared_keys() {
        let base = sidecar("k", "\"n\", \"x\"", "[12, 1.0], [16, 2.0], [20, 3.0]");
        let smoke = sidecar("k", "\"n\", \"x\"", "[12, 1.1], [16, 1.9]");
        assert!(diff_sidecars(&base, &smoke, &DiffOptions::default()).unwrap().is_empty());
    }

    #[test]
    fn no_shared_keys_is_flagged() {
        let base = sidecar("k", "\"n\", \"x\"", "[12, 1.0]");
        let other = sidecar("k", "\"n\", \"x\"", "[99, 1.0]");
        let bad = diff_sidecars(&base, &other, &DiffOptions::default()).unwrap();
        assert!(bad.iter().any(|m| m.contains("no row keys in common")), "{bad:?}");
    }

    #[test]
    fn one_sided_passes_improvements_but_flags_drops() {
        let base = sidecar("k", "\"n\", \"speedup\"", "[12, 1.0]");
        let better = sidecar("k", "\"n\", \"speedup\"", "[12, 2.5]");
        let worse = sidecar("k", "\"n\", \"speedup\"", "[12, 0.4]");
        let opts = DiffOptions { one_sided: true, ..DiffOptions::default() }; // -50%
        assert!(diff_sidecars(&base, &better, &opts).unwrap().is_empty());
        let bad = diff_sidecars(&base, &worse, &opts).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("-50%"), "{bad:?}");
    }

    #[test]
    fn one_sided_above_passes_improvements_but_flags_blowups() {
        let base = sidecar("s", "\"n\", \"slowdown\"", "[12, 4.0]");
        let better = sidecar("s", "\"n\", \"slowdown\"", "[12, 1.5]");
        let worse = sidecar("s", "\"n\", \"slowdown\"", "[12, 6.5]");
        let opts = DiffOptions { one_sided_above: true, ..DiffOptions::default() }; // +50%
        assert!(diff_sidecars(&base, &better, &opts).unwrap().is_empty());
        let bad = diff_sidecars(&base, &worse, &opts).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("+50%"), "{bad:?}");
        // Both one-sided bounds together degenerate to the two-sided check:
        // the improvement beyond tolerance now fails too.
        let both = DiffOptions { one_sided: true, one_sided_above: true, ..opts };
        assert!(!diff_sidecars(&base, &better, &both).unwrap().is_empty());
    }

    #[test]
    fn cols_filter_ignores_unlisted_columns() {
        let base = sidecar("k", "\"n\", \"ns\", \"speedup\"", "[12, 100.0, 1.0]");
        let fresh = sidecar("k", "\"n\", \"ns\", \"speedup\"", "[12, 900.0, 1.1]");
        let opts =
            DiffOptions { cols: Some(vec!["speedup".to_string()]), ..DiffOptions::default() };
        assert!(diff_sidecars(&base, &fresh, &opts).unwrap().is_empty());
        // Without the filter, the 9x nanosecond blowup is a regression.
        let bad = diff_sidecars(&base, &fresh, &DiffOptions::default()).unwrap();
        assert!(bad.iter().any(|m| m.contains("ns")), "{bad:?}");
    }

    #[test]
    fn unknown_cols_name_is_an_error_message() {
        let s = sidecar("k", "\"n\", \"x\"", "[12, 1.0]");
        let opts = DiffOptions { cols: Some(vec!["nope".to_string()]), ..DiffOptions::default() };
        let bad = diff_sidecars(&s, &s, &opts).unwrap();
        assert!(bad.iter().any(|m| m.contains("nope")), "{bad:?}");
    }

    #[test]
    fn structure_only_checks_shape_not_values() {
        let base = sidecar("k", "\"n\", \"x\"", "[12, 1.0]");
        let wild = sidecar("k", "\"n\", \"x\"", "[12, 999.0]");
        let opts = DiffOptions { structure_only: true, ..DiffOptions::default() };
        assert!(diff_sidecars(&base, &wild, &opts).unwrap().is_empty());
        let renamed = sidecar("k", "\"n\", \"y\"", "[12, 1.0]");
        let bad = diff_sidecars(&base, &renamed, &opts).unwrap();
        assert!(bad.iter().any(|m| m.contains("columns differ")), "{bad:?}");
        let empty = sidecar("k", "\"n\", \"x\"", "");
        let bad = diff_sidecars(&base, &empty, &opts).unwrap();
        assert!(bad.iter().any(|m| m.contains("no rows")), "{bad:?}");
    }

    #[test]
    fn string_cells_must_match_exactly() {
        let base = sidecar("s", "\"k\", \"mode\"", "[\"a\", \"fast\"]");
        let fresh = sidecar("s", "\"k\", \"mode\"", "[\"a\", \"slow\"]");
        let bad = diff_sidecars(&base, &fresh, &DiffOptions::default()).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn name_and_table_count_mismatches() {
        let a = sidecar("a", "\"n\"", "[1]");
        let b = sidecar("b", "\"n\"", "[1]");
        let bad = diff_sidecars(&a, &b, &DiffOptions::default()).unwrap();
        assert!(bad.iter().any(|m| m.contains("bench name")), "{bad:?}");
        let two = "{\"bench\": \"a\", \"tables\": [{\"columns\": [\"n\"], \"rows\": [[1]]}, \
                   {\"columns\": [\"n\"], \"rows\": [[1]]}]}";
        let bad = diff_sidecars(&a, two, &DiffOptions::default()).unwrap();
        assert!(bad.iter().any(|m| m.contains("table count")), "{bad:?}");
    }

    #[test]
    fn parse_errors_are_err_not_mismatches() {
        let s = sidecar("k", "\"n\"", "[1]");
        assert!(diff_sidecars("not json", &s, &DiffOptions::default()).is_err());
        assert!(diff_sidecars(&s, "{}", &DiffOptions::default()).is_err());
    }
}
