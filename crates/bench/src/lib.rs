//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every figure of the paper has a `fig*` binary in `src/bin/` that prints
//! the measured series as TSV (plus a short interpretation header). The
//! helpers here implement the paper's measurement protocol:
//!
//! * **Element time** (§6.1): `T · P / N / C` — nanoseconds each core
//!   spends per element, comparable across thread counts and column
//!   counts and directly against machine constants like the cost of a
//!   cache miss.
//! * **Median of repeats**: "all presented numbers are the median of 10
//!   runs"; the repeat count scales down for the slowest configurations.
//!
//! Every binary also accepts `--json <path>` and then writes the tables it
//! printed as a machine-readable sidecar (see [`Sidecar`]).

use hsa_obs::json::JsonValue;
use std::time::Instant;

pub mod diff;

/// Measure `f`, returning (median seconds, last result).
pub fn median_secs<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut times = Vec::with_capacity(repeats.max(1));
    let t0 = Instant::now();
    let mut last = f();
    times.push(t0.elapsed().as_secs_f64());
    for _ in 1..repeats {
        let t0 = Instant::now();
        last = f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last)
}

/// The paper's element-time metric in nanoseconds: `T · P / N / C`.
pub fn element_time_ns(total_secs: f64, threads: usize, rows: usize, columns: usize) -> f64 {
    total_secs * 1e9 * threads as f64 / rows.max(1) as f64 / columns.max(1) as f64
}

/// Payload bandwidth in GiB/s for `rows` 8-byte elements.
pub fn bandwidth_gib_s(total_secs: f64, rows: usize) -> f64 {
    (rows as f64 * 8.0) / total_secs / (1u64 << 30) as f64
}

/// Standard K sweep of the figures: powers of two from `lo` to `hi`.
pub fn k_sweep(lo_log2: u32, hi_log2: u32) -> Vec<u64> {
    (lo_log2..=hi_log2).map(|e| 1u64 << e).collect()
}

/// Emit one TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// CLI arguments with any `--json <path>` pair removed, program name
/// excluded — what positional parsing should index into.
pub fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let _ = args.next();
        } else {
            out.push(a);
        }
    }
    out
}

/// Parse positional CLI argument `i` (1-based, flags skipped) as a number.
pub fn arg<T: std::str::FromStr>(i: usize) -> Option<T> {
    positional_args().get(i - 1).and_then(|s| s.parse().ok())
}

/// Repeat counts that keep total run time reasonable at any size.
pub fn repeats_for(n: usize) -> usize {
    match n {
        0..=1_000_000 => 9,
        1_000_001..=8_000_000 => 5,
        8_000_001..=33_000_000 => 3,
        _ => 1,
    }
}

/// Deterministic pseudo-random u64 keys (full range).
pub fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // xorshift the high bits down so all 64 bits vary
            let x = s ^ (s >> 31);
            x.wrapping_mul(0x9e3779b97f4a7c15)
        })
        .collect()
}

/// Number of threads to run "full parallelism" experiments with.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

/// Operator configuration used by the figure sweeps: the defaults with an
/// explicit strategy and thread count.
pub fn sweep_cfg(strategy: hsa_core::Strategy, threads: usize) -> hsa_core::AggregateConfig {
    hsa_core::AggregateConfig { threads, strategy, ..hsa_core::AggregateConfig::default() }
}

/// Time one DISTINCT-style operator run, returning (median secs, stats of
/// the last run).
pub fn time_distinct(
    keys: &[u64],
    cfg: &hsa_core::AggregateConfig,
    repeats: usize,
) -> (f64, hsa_core::OpStats) {
    let (secs, (_, stats)) = median_secs(repeats, || hsa_core::distinct(keys, cfg));
    (secs, stats)
}

/// TSV printer that doubles as a JSON sidecar writer.
///
/// Every `fig*` binary routes its tables through one of these: rows still
/// print as TSV for eyeballing and plotting scripts, and when the binary
/// was invoked with `--json <path>` the same tables are written on drop as
///
/// ```json
/// {"bench": "fig04", "tables": [{"columns": [...], "rows": [[...], ...]}]}
/// ```
///
/// with cells that parse as numbers emitted as JSON numbers.
pub struct Sidecar {
    name: String,
    path: Option<String>,
    tables: Vec<(Vec<String>, Vec<Vec<String>>)>,
}

impl Sidecar {
    /// Build from `std::env::args`, honoring `--json <path>`.
    pub fn from_args(name: &str) -> Self {
        let mut path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--json" {
                path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
        }
        Self { name: name.to_string(), path, tables: Vec::new() }
    }

    /// Print a header row and start a new table in the sidecar.
    pub fn header(&mut self, cells: &[String]) {
        row(cells);
        self.tables.push((cells.to_vec(), Vec::new()));
    }

    /// Print a data row and append it to the current table.
    pub fn row(&mut self, cells: &[String]) {
        row(cells);
        if self.tables.is_empty() {
            self.tables.push((Vec::new(), Vec::new()));
        }
        let Some(table) = self.tables.last_mut() else { return };
        table.1.push(cells.to_vec());
    }

    fn json_cell(cell: &str) -> JsonValue {
        if let Ok(u) = cell.parse::<u64>() {
            JsonValue::U64(u)
        } else if let Ok(f) = cell.parse::<f64>() {
            JsonValue::F64(f)
        } else {
            JsonValue::Str(cell.to_string())
        }
    }

    /// The sidecar document for the tables collected so far.
    pub fn to_json(&self) -> JsonValue {
        let tables: Vec<JsonValue> = self
            .tables
            .iter()
            .map(|(header, rows)| {
                JsonValue::obj([
                    ("columns", JsonValue::Array(header.iter().map(JsonValue::str).collect())),
                    (
                        "rows",
                        JsonValue::Array(
                            rows.iter()
                                .map(|r| {
                                    JsonValue::Array(r.iter().map(|c| Self::json_cell(c)).collect())
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        JsonValue::obj([
            ("bench", JsonValue::str(&self.name)),
            ("tables", JsonValue::Array(tables)),
        ])
    }
}

impl Drop for Sidecar {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let text = self.to_json().to_string_pretty(2);
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("failed to write {path}: {e}");
            } else {
                eprintln!("# wrote JSON sidecar to {path}");
            }
        }
    }
}

/// Format helper for mixed cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        [$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0;
        let (m, _) = median_secs(5, || {
            calls += 1;
            if calls == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert!(m < 0.015, "median {m} should ignore the slow first call");
        assert_eq!(calls, 5);
    }

    #[test]
    fn element_time_scales() {
        // 1 second, 1 thread, 1e9 rows, 1 column = 1 ns/element.
        assert!((element_time_ns(1.0, 1, 1_000_000_000, 1) - 1.0).abs() < 1e-9);
        // Twice the threads = twice the per-core time.
        assert!((element_time_ns(1.0, 2, 1_000_000_000, 1) - 2.0).abs() < 1e-9);
        // Twice the columns = half the per-element-cell time.
        assert!((element_time_ns(1.0, 1, 1_000_000_000, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn k_sweep_endpoints() {
        let ks = k_sweep(4, 8);
        assert_eq!(ks, vec![16, 32, 64, 128, 256]);
    }

    #[test]
    fn sidecar_collects_tables_and_serializes() {
        let mut s = Sidecar { name: "test".into(), path: None, tables: Vec::new() };
        s.header(&cells!["k", "ns"]);
        s.row(&cells![16, format!("{:.1}", 2.5)]);
        s.row(&cells![32, "fast"]);
        let parsed = hsa_obs::json::parse(&s.to_json().to_string_pretty(2)).unwrap();
        assert_eq!(parsed.get("bench").unwrap().as_str(), Some("test"));
        let tables = parsed.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        let rows = tables[0].get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_u64(), Some(16));
        assert_eq!(rows[0].as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(rows[1].as_array().unwrap()[1].as_str(), Some("fast"));
    }

    #[test]
    fn bandwidth_math() {
        // 2^30 rows of 8 B in 1 s = 8 GiB/s.
        assert!((bandwidth_gib_s(1.0, 1 << 30) - 8.0).abs() < 1e-9);
    }
}
