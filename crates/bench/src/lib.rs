//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every figure of the paper has a `fig*` binary in `src/bin/` that prints
//! the measured series as TSV (plus a short interpretation header). The
//! helpers here implement the paper's measurement protocol:
//!
//! * **Element time** (§6.1): `T · P / N / C` — nanoseconds each core
//!   spends per element, comparable across thread counts and column
//!   counts and directly against machine constants like the cost of a
//!   cache miss.
//! * **Median of repeats**: "all presented numbers are the median of 10
//!   runs"; the repeat count scales down for the slowest configurations.

use std::time::Instant;

/// Measure `f`, returning (median seconds, last result).
pub fn median_secs<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(repeats >= 1);
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("at least one repeat"))
}

/// The paper's element-time metric in nanoseconds: `T · P / N / C`.
pub fn element_time_ns(total_secs: f64, threads: usize, rows: usize, columns: usize) -> f64 {
    total_secs * 1e9 * threads as f64 / rows.max(1) as f64 / columns.max(1) as f64
}

/// Payload bandwidth in GiB/s for `rows` 8-byte elements.
pub fn bandwidth_gib_s(total_secs: f64, rows: usize) -> f64 {
    (rows as f64 * 8.0) / total_secs / (1u64 << 30) as f64
}

/// Standard K sweep of the figures: powers of two from `lo` to `hi`.
pub fn k_sweep(lo_log2: u32, hi_log2: u32) -> Vec<u64> {
    (lo_log2..=hi_log2).map(|e| 1u64 << e).collect()
}

/// Emit one TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Format helper for mixed cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        [$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0;
        let (m, _) = median_secs(5, || {
            calls += 1;
            if calls == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert!(m < 0.015, "median {m} should ignore the slow first call");
        assert_eq!(calls, 5);
    }

    #[test]
    fn element_time_scales() {
        // 1 second, 1 thread, 1e9 rows, 1 column = 1 ns/element.
        assert!((element_time_ns(1.0, 1, 1_000_000_000, 1) - 1.0).abs() < 1e-9);
        // Twice the threads = twice the per-core time.
        assert!((element_time_ns(1.0, 2, 1_000_000_000, 1) - 2.0).abs() < 1e-9);
        // Twice the columns = half the per-element-cell time.
        assert!((element_time_ns(1.0, 1, 1_000_000_000, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn k_sweep_endpoints() {
        let ks = k_sweep(4, 8);
        assert_eq!(ks, vec![16, 32, 64, 128, 256]);
    }

    #[test]
    fn bandwidth_math() {
        // 2^30 rows of 8 B in 1 s = 8 GiB/s.
        assert!((bandwidth_gib_s(1.0, 1 << 30) - 8.0).abs() < 1e-9);
    }
}
