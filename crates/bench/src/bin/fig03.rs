//! Figure 3: payload bandwidth of the partitioning routine variants.
//!
//! Paper setup (§4.2): uniformly distributed random 64-bit keys, 256
//! partitions. Bars, in paper order:
//!
//! * `memcpy`  — non-temporal-store memcpy (bandwidth reference)
//! * `key`     — naive partitioning by key bits
//! * `hash`    — naive partitioning by hash bits
//! * `swc key` / `swc hash` — software write-combining
//! * `oo`      — swc hash + 16-way unrolled hashing
//! * `2lvl`    — oo with the two-level output (the production kernel)
//! * `map`     — applying the digit mapping to an aggregate column
//!
//! Paper result: swc ≈ 2.9× naive, oo +24% (3.0× total), two-level −2%,
//! final kernel ≈ 97% of memcpy bandwidth; map ≈ 93%.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig03 [rows_log2]
//! ```

use hsa_bench::*;
use hsa_partition as part;

fn main() {
    let mut out = Sidecar::from_args("fig03");
    let rows_log2: u32 = arg(1).unwrap_or(24);
    let n = 1usize << rows_log2;
    let repeats = repeats_for(n);
    let keys = random_keys(n, 42);
    let murmur = hsa_hash::Murmur2::default();
    let identity = hsa_hash::Identity;

    println!("# Figure 3: partitioning bandwidth, N = 2^{rows_log2} uniform random u64");
    println!("# paper: swc ≈ 2.9x naive-key, oo +24%, 2lvl -2%, final ≈ 97% of memcpy");
    out.header(&cells!["variant", "GiB/s", "vs memcpy"]);

    let mut dst = Vec::new();
    let (t_memcpy, _) = median_secs(repeats, || part::memcpy_nt(&mut dst, &keys));
    let memcpy_bw = bandwidth_gib_s(t_memcpy, n);
    out.row(&cells!["memcpy_nt", format!("{memcpy_bw:.2}"), "1.00"]);

    let mut report = |name: &str, secs: f64| {
        let bw = bandwidth_gib_s(secs, n);
        out.row(&cells![name, format!("{bw:.2}"), format!("{:.2}", bw / memcpy_bw)]);
    };

    let (t, _) = median_secs(repeats, || part::partition_naive(keys.iter().copied(), identity, 0));
    report("naive key", t);
    let (t, _) = median_secs(repeats, || part::partition_naive(keys.iter().copied(), murmur, 0));
    report("naive hash", t);
    use part::FlushMode::{Cached, Streaming};
    let (t, _) = median_secs(repeats, || {
        part::partition_swc_with_mode(keys.iter().copied(), identity, 0, Cached)
    });
    report("swc key", t);
    let (t, _) = median_secs(repeats, || {
        part::partition_swc_with_mode(keys.iter().copied(), murmur, 0, Cached)
    });
    report("swc hash", t);
    let (t, _) = median_secs(repeats, || {
        part::partition_swc_with_mode(keys.iter().copied(), murmur, 0, Streaming)
    });
    report("swc hash (nt stores)", t);
    let (t, _) = median_secs(repeats, || part::partition_overalloc(&keys, murmur, 0));
    report("oo (overalloc)", t);
    let (t, _) =
        median_secs(repeats, || part::partition_unrolled_with_mode(&keys, murmur, 0, Cached));
    report("oo + 2lvl (production)", t);
    let (t, _) =
        median_secs(repeats, || part::partition_unrolled_with_mode(&keys, murmur, 0, Streaming));
    report("oo + 2lvl (nt stores)", t);

    let mut mapping = Vec::new();
    let parts = part::partition_keys_mapped([keys.as_slice()].into_iter(), murmur, 0, &mut mapping);
    assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), n);
    let vals = random_keys(n, 7);
    let (t, _) =
        median_secs(repeats, || part::scatter_by_digits(&mapping, [vals.as_slice()].into_iter()));
    report("map (aggregate column)", t);
}
