//! Figure 4: per-pass breakdown of the illustrative strategies (§5).
//!
//! (a) `HASHINGONLY`, (b) `PARTITIONALWAYS` with one partitioning pass,
//! (c) with two — over uniformly distributed data, sweeping K. The paper's
//! stacked bars become TSV columns here: element time per recursion level
//! (task time summed over threads, normalized per element).
//!
//! Expected shape: HashingOnly is flat and cheap while K fits a table and
//! degrades once every pass misses the cache; PartitionAlways pays its
//! fixed passes at every K, so it loses for small K and wins for large K.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig04 [rows_log2]
//! ```

use hsa_bench::*;
use hsa_core::Strategy;
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig04");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(5);

    println!("# Figure 4: pass breakdown on uniform data, N = 2^{rows_log2}, P = {threads}");
    out.header(&cells![
        "strategy",
        "log2(K)",
        "total ns/el",
        "level0 ns/el",
        "level1 ns/el",
        "level2+ ns/el",
        "passes"
    ]);

    let strategies: [(&str, Strategy); 3] = [
        ("HashingOnly", Strategy::HashingOnly),
        ("PartitionAlways(1+H)", Strategy::PartitionAlways { passes: 1 }),
        ("PartitionAlways(2+H)", Strategy::PartitionAlways { passes: 2 }),
    ];

    for k in k_sweep(4, rows_log2) {
        let keys = generate(Distribution::Uniform, n, k, 42);
        for (name, strategy) in strategies {
            let cfg = sweep_cfg(strategy, threads);
            let (secs, stats) = time_distinct(&keys, &cfg, repeats);
            let per_level: Vec<f64> =
                stats.task_nanos_per_level.iter().map(|&ns| ns as f64 / n as f64).collect();
            out.row(&cells![
                name,
                k.ilog2(),
                format!("{:.2}", element_time_ns(secs, threads, n, 1)),
                format!("{:.2}", per_level[0]),
                format!("{:.2}", per_level[1]),
                format!("{:.2}", per_level[2..].iter().sum::<f64>()),
                stats.passes_used(),
            ]);
        }
    }
}
