//! Ablation: the hot-loop kernel tiers (batching, prefetch, SIMD).
//!
//! Isolates the two kernels the operator's `HASHING` pass spends its time
//! in and measures each implementation tier directly:
//!
//! * **probe** — hash a key and find its slot in the cache-sized table:
//!   `scalar` is the row-at-a-time `insert_key` walk, `batched` hashes 16
//!   keys ahead and prefetches their home slots but resolves with the
//!   scalar-width scan, `batched+simd` adds the SIMD occupied/key compare.
//! * **fold** — apply a mapped value column into the slot-indexed state
//!   column: `scalar` is the reference loop, `batched` adds lookahead
//!   prefetching of the destination slots, `batched+simd` gathers and
//!   combines 4 lanes at a time (AVX2; clamps to `batched` without it).
//!
//! The table is sized to hold K groups at 25% fill, so small K stays cache
//! resident and K ≥ 2²⁰ is genuinely out of cache — the regime the
//! prefetch pipeline exists for. Tables are pre-warmed: every timed probe
//! is a hit, so the numbers are pure hash+probe without seal management.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin ablation_kernels [rows_log2]
//! ```

use hsa_bench::*;
use hsa_datagen::{generate, Distribution};
use hsa_hash::{Hasher64, Murmur2, FANOUT};
use hsa_hashtbl::{AggTable, Insert, TableConfig};
use hsa_kernels::{detect_best, fold_mapped, FoldOp, KernelKind};
use std::hint::black_box;

/// Slots for K groups at 25% fill with headroom, so the warm table never
/// reports `Full` (capacity = slots/4 = 2K > K).
fn slots_for(k: u64) -> usize {
    ((8 * k).next_power_of_two() as usize).max(2 * FANOUT)
}

fn probe_scalar(keys: &[u64], table: &mut AggTable) -> u64 {
    let hasher = Murmur2::default();
    let mut hits = 0u64;
    for &key in keys {
        match table.insert_key(key, hasher.hash_u64(key)) {
            Insert::New(_) | Insert::Hit(_) => hits += 1,
            Insert::Full => unreachable!("table sized to never fill"),
        }
    }
    hits
}

fn probe_batched(keys: &[u64], table: &mut AggTable, kind: KernelKind) -> u64 {
    let hasher = Murmur2::default();
    let b = table.insert_batch_distinct(hasher, keys, kind);
    assert!(!b.full, "table sized to never fill");
    b.consumed as u64
}

fn main() {
    let mut out = Sidecar::from_args("ablation_kernels");
    let rows_log2: u32 = arg(1).unwrap_or(23);
    let n = 1usize << rows_log2;
    let best = detect_best();
    let repeats = repeats_for(n).min(5);

    println!("# Ablation: kernel tiers (probe + fold), uniform, N = 2^{rows_log2}, 1 thread");
    println!("# best supported tier: {}", best.label());
    out.header(&cells![
        "log2(K)",
        "probe scalar ns",
        "probe batched ns",
        "probe batched+simd ns",
        "probe speedup",
        "fold scalar ns",
        "fold batched ns",
        "fold batched+simd ns",
        "fold speedup",
    ]);

    for k in [1u64 << 12, 1 << 16, 1 << 20, 1 << 21] {
        let keys = generate(Distribution::Uniform, n, k, 42);
        let slots = slots_for(k);

        // ---- probe tiers: warm the table, then every probe is a hit.
        let mut probe_ns = Vec::new();
        for tier in [None, Some(KernelKind::Scalar), Some(best)] {
            let mut table =
                AggTable::new(TableConfig { total_slots: slots, fill_percent: 25 }, 0, &[]);
            match tier {
                None => probe_scalar(&keys, &mut table),
                Some(kind) => probe_batched(&keys, &mut table, kind),
            };
            let (secs, hits) = median_secs(repeats, || match tier {
                None => probe_scalar(black_box(&keys), &mut table),
                Some(kind) => probe_batched(black_box(&keys), &mut table, kind),
            });
            assert_eq!(hits, n as u64);
            probe_ns.push(element_time_ns(secs, 1, n, 1));
        }

        // ---- fold tiers: sum a value column into slot-indexed state.
        let mapping: Vec<u32> = keys
            .iter()
            .map(|&key| (Murmur2::default().hash_u64(key) % slots as u64) as u32)
            .collect();
        let vals: Vec<u64> = (0..n as u64).collect();
        let mut col = vec![0u64; slots];
        let mut fold_ns = Vec::new();
        for kind in [KernelKind::Scalar, KernelKind::Sse2.min(best), best] {
            let (secs, ()) = median_secs(repeats, || {
                fold_mapped(kind, FoldOp::Sum, false, black_box(&mut col), &mapping, &vals)
            });
            fold_ns.push(element_time_ns(secs, 1, n, 1));
        }
        black_box(&col);

        out.row(&cells![
            k.ilog2(),
            format!("{:.2}", probe_ns[0]),
            format!("{:.2}", probe_ns[1]),
            format!("{:.2}", probe_ns[2]),
            format!("{:.2}", probe_ns[0] / probe_ns[2]),
            format!("{:.2}", fold_ns[0]),
            format!("{:.2}", fold_ns[1]),
            format!("{:.2}", fold_ns[2]),
            format!("{:.2}", fold_ns[0] / fold_ns[2]),
        ]);
    }
}
