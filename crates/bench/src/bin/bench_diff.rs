//! Compare a fresh bench sidecar against a committed baseline.
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json> [--tol <pct>] [--cols <c1,c2,...>]\
//!            [--one-sided] [--one-sided-above] [--structure-only]
//! ```
//!
//! Exit code 0: within tolerance. 1: regression (mismatches printed, one
//! per line). 2: usage or parse error.
//!
//! Row keys (column 0) are joined, so a smoke-sized fresh run compares
//! cleanly against a full-sized baseline; see `hsa_bench::diff` for the
//! comparison rules.

use hsa_bench::diff::{diff_sidecars, DiffOptions};
use std::process::ExitCode;

const USAGE: &str = "usage: bench_diff <baseline.json> <fresh.json> [--tol <pct>] \
                     [--cols <c1,c2,...>] [--one-sided] [--one-sided-above] \
                     [--structure-only]";

fn parse_opts(argv: &[String]) -> Result<(String, String, DiffOptions), String> {
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                let v = it.next().ok_or("--tol needs a value")?;
                opts.tol_pct = v.parse::<f64>().map_err(|_| format!("bad --tol {v:?}"))?;
                if opts.tol_pct < 0.0 || opts.tol_pct.is_nan() {
                    return Err(format!("bad --tol {v:?}"));
                }
            }
            "--cols" => {
                let v = it.next().ok_or("--cols needs a value")?;
                opts.cols = Some(v.split(',').map(|c| c.trim().to_string()).collect());
            }
            "--one-sided" => opts.one_sided = true,
            "--one-sided-above" => opts.one_sided_above = true,
            "--structure-only" => opts.structure_only = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => paths.push(other.to_string()),
        }
    }
    match paths.len() {
        2 => Ok((paths.swap_remove(0), paths.remove(0), opts)),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (base_path, fresh_path, opts) = match parse_opts(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let (base, fresh) = match (read(&base_path), read(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match diff_sidecars(&base, &fresh, &opts) {
        Ok(bad) if bad.is_empty() => {
            println!("bench_diff: {fresh_path} within tolerance of {base_path}");
            ExitCode::SUCCESS
        }
        Ok(bad) => {
            eprintln!("bench_diff: {} regression(s) vs {base_path}:", bad.len());
            for m in &bad {
                eprintln!("  {m}");
            }
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
    }
}
