//! Ablation: hash-table fill rate (§4.1's "full at 25%").
//!
//! The paper fixes the table's fill limit at 25% so probe chains stay
//! near length 1. This sweep quantifies the trade-off: higher fill means
//! fewer seals (less run management) but longer probes; lower fill means
//! the opposite. Run on uniform data at a K that forces several seals.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin ablation_fill [rows_log2]
//! ```

use hsa_bench::*;
use hsa_core::{AdaptiveParams, AggregateConfig, Strategy};
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("ablation_fill");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(3);

    println!("# Ablation: table fill limit, uniform, N = 2^{rows_log2}");
    out.header(&cells!["log2(K)", "fill %", "ns/element", "seals"]);

    for k in [1u64 << 12, 1 << 16, 1 << 20] {
        let keys = generate(Distribution::Uniform, n, k, 42);
        for fill in [10usize, 25, 50, 75, 90] {
            let cfg = AggregateConfig {
                threads,
                strategy: Strategy::Adaptive(AdaptiveParams::default()),
                fill_percent: fill,
                ..AggregateConfig::default()
            };
            let (secs, stats) = time_distinct(&keys, &cfg, repeats);
            out.row(&cells![
                k.ilog2(),
                fill,
                format!("{:.1}", element_time_ns(secs, threads, n, 1)),
                stats.seals
            ]);
        }
    }
}
