//! Ablation: multi-query concurrency on the shared worker runtime.
//!
//! Runs Q identical aggregations either one at a time (sequential) or all
//! in flight at once on the shared pool, across a (queries × threads per
//! query × key cardinality) grid. The column that matters is `speedup`:
//! aggregate throughput of the concurrent run over the sequential run of
//! the same Q queries. With more cores than the per-query thread count,
//! concurrent queries fill the idle workers and the speedup climbs toward
//! min(Q, cores / threads-per-query); on a single core it sits near 1.0
//! for cache-resident work — the runtime's fair dispatch must not make
//! interleaved queries materially slower than back-to-back ones. The
//! memory-bound `spread` rungs are noisier there: interleaving several
//! partition-phase working sets on one core thrashes the cache the
//! sequential run kept warm, so sub-1.0 single-core speedups on those
//! rows are expected and the gate tolerance is sized for it.
//!
//! Two cardinalities bracket the paper's regimes: `cache` (K = 2^10,
//! tables stay cache-resident, throughput-bound) and `spread` (K = N/4,
//! partitioning kicks in, memory-bound).
//!
//! The regression gate compares only `speedup` — it is dimensionless and
//! survives machine changes, while absolute Mrows/s does not. One-sided:
//! a beefier runner beating the committed baseline passes.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin ablation_concurrency [rows_log2]
//! ```

use std::sync::Barrier;

use hsa_agg::AggSpec;
use hsa_bench::*;
use hsa_core::{AggStream, AggregateConfig, ExecEnv, ObsConfig, Strategy};
use hsa_datagen::{generate, Distribution};

/// Rows per `push` — the serving-path chunk size, small enough that the
/// scheduler interleaves queries rather than letting one monopolize.
const CHUNK_ROWS: usize = 1 << 14;

fn run_query(keys: &[u64], vals: &[u64], cfg: &AggregateConfig) -> usize {
    let specs = [AggSpec::count(), AggSpec::sum(0)];
    let mut stream = AggStream::new(&specs, cfg, &ExecEnv::unrestricted(), &ObsConfig::disabled())
        .expect("stream");
    for (k, v) in keys.chunks(CHUNK_ROWS).zip(vals.chunks(CHUNK_ROWS)) {
        stream.push(k, &[v]).expect("push");
    }
    let (out, _) = stream.finish().expect("finish");
    out.n_groups()
}

fn run_concurrent(queries: usize, keys: &[u64], vals: &[u64], cfg: &AggregateConfig) {
    let barrier = Barrier::new(queries);
    std::thread::scope(|s| {
        for _ in 0..queries {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                run_query(keys, vals, cfg);
            });
        }
    });
}

fn main() {
    let mut out = Sidecar::from_args("ablation_concurrency");
    let rows_log2: u32 = arg(1).unwrap_or(20);
    let n = 1usize << rows_log2;
    let repeats = repeats_for(n).min(3);
    let vals: Vec<u64> = (0..n as u64).collect();

    println!(
        "# Ablation: concurrent queries on the shared runtime, N = 2^{rows_log2} rows/query, \
         {} cores",
        default_threads()
    );
    out.header(&cells![
        "workload",
        "queries",
        "threads/query",
        "seq Mrows/s",
        "conc Mrows/s",
        "speedup",
    ]);

    for (label, k) in [("cache", 1u64 << 10), ("spread", (n as u64 / 4).max(1))] {
        let keys = generate(Distribution::Uniform, n, k, 42);
        for queries in [1usize, 2, 4] {
            for threads in [1usize, 2] {
                let cfg = sweep_cfg(Strategy::Adaptive(Default::default()), threads);
                let (seq_secs, ()) = median_secs(repeats, || {
                    for _ in 0..queries {
                        run_query(&keys, &vals, &cfg);
                    }
                });
                let (conc_secs, ()) =
                    median_secs(repeats, || run_concurrent(queries, &keys, &vals, &cfg));
                let total = (queries * n) as f64;
                let seq_tp = total / seq_secs / 1e6;
                let conc_tp = total / conc_secs / 1e6;
                out.row(&cells![
                    format!("{label} q{queries} t{threads}"),
                    queries,
                    threads,
                    format!("{seq_tp:.1}"),
                    format!("{conc_tp:.1}"),
                    format!("{:.2}", seq_secs / conc_secs),
                ]);
            }
        }
    }
}
