//! Figure 9: skew resistance of ADAPTIVE (§6.5).
//!
//! Runs ADAPTIVE on every §6.5 distribution over a K sweep. The paper's
//! claims, checked here: (1) no distribution is slower than uniform —
//! "uniform is the hardest distribution for our operator and skew only
//! improves its performance"; (2) the hash-share column shows *where* the
//! operator keeps hashing (the solid markers of the paper's plot):
//! clustered/skewed inputs sustain hashing to much larger K.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig09 [rows_log2]
//! ```

use hsa_bench::*;
use hsa_core::{distinct, AdaptiveParams, Strategy};
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig09");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(3);

    println!("# Figure 9: ADAPTIVE per distribution, N = 2^{rows_log2}, P = {threads}");
    println!("# hash% = share of rows routed through HASHING (the paper's solid markers)");
    out.header(&cells!["distribution", "log2(K)", "ns/element", "hash%", "groups"]);

    for dist in Distribution::all() {
        for k in k_sweep(6, rows_log2).into_iter().step_by(2) {
            let keys = generate(dist, n, k, 42);
            let cfg = sweep_cfg(Strategy::Adaptive(AdaptiveParams::default()), threads);
            let (secs, (agg, stats)) = median_secs(repeats, || distinct(&keys, &cfg));
            let hash_share = 100.0 * stats.total_hash_rows() as f64
                / (stats.total_hash_rows() + stats.total_part_rows()).max(1) as f64;
            out.row(&cells![
                dist.name(),
                k.ilog2(),
                format!("{:.1}", element_time_ns(secs, threads, n, 1)),
                format!("{hash_share:.0}"),
                agg.n_groups()
            ]);
        }
    }
}
