//! Shared helpers for the figure binaries (included via `#[path]`).
#![allow(dead_code)] // each binary uses a different subset

/// Parse positional CLI argument `i` as a number.
pub fn arg<T: std::str::FromStr>(i: usize) -> Option<T> {
    std::env::args().nth(i).and_then(|s| s.parse().ok())
}

/// Repeat counts that keep total run time reasonable at any size.
pub fn repeats_for(n: usize) -> usize {
    match n {
        0..=1_000_000 => 9,
        1_000_001..=8_000_000 => 5,
        8_000_001..=33_000_000 => 3,
        _ => 1,
    }
}

/// Deterministic pseudo-random u64 keys (full range).
pub fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // xorshift the high bits down so all 64 bits vary
            let x = s ^ (s >> 31);
            x.wrapping_mul(0x9e3779b97f4a7c15)
        })
        .collect()
}

/// Number of threads to run "full parallelism" experiments with.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

/// Operator configuration used by the figure sweeps: the defaults with an
/// explicit strategy and thread count.
pub fn sweep_cfg(strategy: hsa_core::Strategy, threads: usize) -> hsa_core::AggregateConfig {
    hsa_core::AggregateConfig {
        threads,
        strategy,
        ..hsa_core::AggregateConfig::default()
    }
}

/// Time one DISTINCT-style operator run, returning (median secs, stats of
/// the last run).
#[allow(dead_code)]
pub fn time_distinct(
    keys: &[u64],
    cfg: &hsa_core::AggregateConfig,
    repeats: usize,
) -> (f64, hsa_core::OpStats) {
    let (secs, (_, stats)) = hsa_bench::median_secs(repeats, || hsa_core::distinct(keys, cfg));
    (secs, stats)
}
