//! Figure 1: cache-line transfers of the textbook algorithms (§2).
//!
//! Analytic part: the paper's exact setting — `N = 2³²`, `M = 2¹⁶`,
//! `B = 16` — swept over K. The claim to check: `SORTAGG_OPT` and
//! `HASHAGG_OPT` coincide everywhere, naive `HASHAGG` explodes past
//! `K = M`, naive `SORTAGG` pays full sorting depth even for small K.
//!
//! Empirical part: the same algorithms instrumented against the
//! set-associative LRU cache simulator at a laptop-feasible scale,
//! validating that the formulas predict measured transfers.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig01
//! ```

use hsa_bench::*;
use hsa_xmem::model::{hash_agg, hash_agg_opt, sort_agg, sort_agg_opt, ModelParams};
use hsa_xmem::traced::{traced_hash_aggregation, traced_sort_aggregation};
use hsa_xmem::CacheSim;

fn main() {
    let mut out = Sidecar::from_args("fig01");
    let p = ModelParams::FIGURE1;
    let n: u64 = 1 << 32;

    println!("# Figure 1 (analytic): cache-line transfers, N=2^32, M=2^16, B=16");
    out.header(&cells!["log2(K)", "SORTAGG", "SORTAGG_OPT", "HASHAGG", "HASHAGG_OPT"]);
    for e in (0..=32).step_by(2) {
        let k = 1u64 << e;
        out.row(&cells![
            e,
            sort_agg(p, n, k),
            sort_agg_opt(p, n, k),
            hash_agg(p, n, k),
            hash_agg_opt(p, n, k),
        ]);
    }

    // Empirical validation at simulator scale: 32 KiB fully associative
    // LRU cache, 64 B lines → M = 4096 rows, B = 8 rows. The simulated
    // bucket sort uses fan-out 16 (one hot output line per partition keeps
    // the working set ≪ cache), so the model is evaluated with the same
    // fan-out; the simulated hash table is provisioned at 2 slots per
    // group, so its effective in-cache group capacity is M/2.
    let sim_n = 200_000usize;
    let sp = ModelParams { m: 4096, b: 8 };
    let hash_p = ModelParams { m: 2048, b: 8 };
    println!("\n# Figure 1 (simulated): N=2*10^5, 32 KiB LRU cache, 64 B lines");
    out.header(&cells![
        "log2(K)",
        "sim SORT",
        "model SORT (fanout 16)",
        "sim HASH",
        "model HASH (M_eff=2^11)",
    ]);
    for e in [4u32, 8, 10, 12, 14, 16] {
        let k = 1u64 << e;
        let keys: Vec<u64> = {
            let mut s = 0x1234_5678u64;
            (0..sim_n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 33) % k
                })
                .collect()
        };
        let cache = || CacheSim::fully_associative(32 * 1024, 64);
        let sort = traced_sort_aggregation(cache(), &keys, 16, 2048);
        let hash = traced_hash_aggregation(cache(), &keys, (k * 2).next_power_of_two());
        assert_eq!(sort.groups, hash.groups);
        out.row(&cells![
            e,
            sort.stats.transfers(),
            hsa_xmem::model::sort_agg_with_fanout(sp, sim_n as u64, k, 16),
            hash.stats.transfers(),
            hash_agg(hash_p, sim_n as u64, k),
        ]);
    }
    println!("# shapes to check: HASH explodes once K exceeds the (effective) cache;");
    println!("# SORT grows by whole passes and never explodes.");
}
