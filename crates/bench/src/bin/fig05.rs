//! Figure 5: ADAPTIVE against the illustrative strategies (§5).
//!
//! Uniform data, K sweep. The paper's claim: ADAPTIVE's run time
//! "corresponds piecewise to the best of the other strategies" — it
//! matches HashingOnly while a table holds all groups and tracks the best
//! PartitionAlways depth beyond, without knowing K.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig05 [rows_log2]
//! ```

use hsa_bench::*;
use hsa_core::{AdaptiveParams, Strategy};
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig05");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(5);

    println!("# Figure 5: ADAPTIVE vs illustrative strategies, uniform, N = 2^{rows_log2}, P = {threads}");
    println!("# expectation: ADAPTIVE ≈ min(HashingOnly, PartitionAlways*) at every K");
    out.header(&cells![
        "log2(K)",
        "HashingOnly",
        "Part(1)+H",
        "Part(2)+H",
        "ADAPTIVE",
        "adaptive part rows %"
    ]);

    for k in k_sweep(4, rows_log2) {
        let keys = generate(Distribution::Uniform, n, k, 42);
        let mut results = Vec::new();
        for strategy in [
            Strategy::HashingOnly,
            Strategy::PartitionAlways { passes: 1 },
            Strategy::PartitionAlways { passes: 2 },
            Strategy::Adaptive(AdaptiveParams::default()),
        ] {
            let cfg = sweep_cfg(strategy, threads);
            let (secs, stats) = time_distinct(&keys, &cfg, repeats);
            results.push((element_time_ns(secs, threads, n, 1), stats));
        }
        let part_share = 100.0 * results[3].1.total_part_rows() as f64
            / (results[3].1.total_part_rows() + results[3].1.total_hash_rows()).max(1) as f64;
        out.row(&cells![
            k.ilog2(),
            format!("{:.2}", results[0].0),
            format!("{:.2}", results[1].0),
            format!("{:.2}", results[2].0),
            format!("{:.2}", results[3].0),
            format!("{part_share:.0}")
        ]);
    }
}
