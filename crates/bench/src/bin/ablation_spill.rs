//! Ablation: out-of-core aggregation — what spill-to-disk costs.
//!
//! Streams one fixed workload through `AggStream` under a ladder of memory
//! budgets with a spill directory configured, against the unbudgeted
//! in-memory run as the baseline. As the budget tightens below the
//! intermediate-run working set, seal-time reservations start getting
//! denied and downgraded into spill-file writes; the table shows the onset
//! and the price: how many runs went to disk, how many bytes moved, and
//! the element-time slowdown relative to keeping everything resident.
//!
//! The budget ladder is expressed in multiples of the output working set
//! (`K` groups × key + two state columns), the floor an aggregation with
//! resident output can never go below — output blocks are materialized
//! in memory even when runs spill.
//!
//! Two extra columns expose the async spill pipeline: `comp ratio` is
//! encoded-over-logical bytes on disk (delta+varint / RLE per extent), and
//! `overlap %` is the share of spill/restore I/O hidden behind compute
//! (`overlapped / (overlapped + waited)` from the store's worker clock).
//!
//! A note on the tail of the ladder: the slowdown is *not* monotone in the
//! budget. Tighter budgets force seal-time denials earlier, which produces
//! *more but smaller* runs; smaller runs recurse less during grow-merge and
//! restore in a cheaper pattern, so a 1.25x budget can beat 1.5x even
//! though it spills more bytes. The column to watch for the regression
//! gate is the worst rung, not the last one.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin ablation_spill [rows_log2]
//! ```

use hsa_agg::AggSpec;
use hsa_bench::*;
use hsa_core::{AggStream, ExecEnv, MemoryBudget, ObsConfig, OpStats, Strategy};
use hsa_datagen::{generate, Distribution};

/// Rows per `push` — small enough that ingestion itself stays bounded.
const CHUNK_ROWS: usize = 1 << 16;

fn run_streamed(
    keys: &[u64],
    vals: &[u64],
    cfg: &hsa_core::AggregateConfig,
    env: &ExecEnv,
) -> Result<(usize, OpStats), hsa_core::AggError> {
    let specs = [AggSpec::count(), AggSpec::sum(0)];
    let mut stream = AggStream::new(&specs, cfg, env, &ObsConfig::disabled())?;
    for (k, v) in keys.chunks(CHUNK_ROWS).zip(vals.chunks(CHUNK_ROWS)) {
        stream.push(k, &[v])?;
    }
    let (out, report) = stream.finish()?;
    Ok((out.n_groups(), report.stats))
}

fn main() {
    let mut out = Sidecar::from_args("ablation_spill");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let k = (n as u64 / 4).max(1);
    let threads = default_threads();
    let cfg = sweep_cfg(Strategy::Adaptive(Default::default()), threads);
    let repeats = repeats_for(n).min(3);

    let keys = generate(Distribution::Uniform, n, k, 42);
    let vals: Vec<u64> = (0..n as u64).collect();
    let dir = std::env::temp_dir().join(format!("hsa-ablation-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The output working set: K groups of key + COUNT + SUM state.
    let output_bytes = k * 8 * 3;

    println!("# Ablation: spill-to-disk, uniform, N = 2^{rows_log2}, K = N/4, {threads} threads");
    println!("# budgets in multiples of the {} MiB output working set", output_bytes >> 20);
    out.header(&cells![
        "budget x output",
        "budget MiB",
        "spilled runs",
        "spilled MiB",
        "restored MiB",
        "comp ratio",
        "overlap %",
        "element ns",
        "slowdown",
    ]);

    // Unbudgeted baseline first; then the ladder down into spilling.
    let (base_secs, base) = median_secs(repeats, || {
        run_streamed(&keys, &vals, &cfg, &ExecEnv::unrestricted()).expect("unbudgeted run")
    });
    let (base_groups, base_stats) = base;
    assert_eq!(base_stats.spilled_runs(), 0);
    let base_ns = element_time_ns(base_secs, threads, n, 1);
    out.row(&cells![
        "unlimited",
        "-",
        0,
        0,
        0,
        "-",
        "-",
        format!("{base_ns:.2}"),
        format!("{:.2}", 1.0),
    ]);

    for factor in [16.0f64, 8.0, 4.0, 2.0, 1.5, 1.25] {
        let budget_bytes = (output_bytes as f64 * factor) as u64;
        let env = ExecEnv::unrestricted()
            .with_budget(MemoryBudget::limited(budget_bytes))
            .with_spill_dir(&dir);
        let (secs, result) = median_secs(repeats, || run_streamed(&keys, &vals, &cfg, &env));
        let label = format!("{factor:.2}");
        match result {
            Ok((groups, stats)) => {
                assert_eq!(groups, base_groups, "budgeted run changed the answer");
                let ns = element_time_ns(secs, threads, n, 1);
                let ratio = stats.spill_encoded_bytes as f64 / stats.spilled_bytes.max(1) as f64;
                let overlap = 100.0 * stats.overlapped_io_nanos as f64
                    / (stats.overlapped_io_nanos + stats.spill_io_wait_nanos).max(1) as f64;
                out.row(&cells![
                    label,
                    budget_bytes >> 20,
                    stats.spilled_runs(),
                    stats.spilled_bytes >> 20,
                    stats.restored_bytes >> 20,
                    format!("{ratio:.2}"),
                    format!("{overlap:.0}"),
                    format!("{ns:.2}"),
                    format!("{:.2}", ns / base_ns),
                ]);
            }
            Err(e) => {
                // Below the resident floor even spilling cannot save the
                // run; record the cliff instead of hiding it.
                out.row(&cells![
                    label,
                    budget_bytes >> 20,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    format!("{e}")
                ]);
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
