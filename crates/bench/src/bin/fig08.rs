//! Figure 8: comparison with prior work (§6.4).
//!
//! The paper's architecture-neutral setting: a DISTINCT query (C = 1, no
//! aggregate columns) on uniform data, element time over a K sweep.
//! Following §6.4, the baselines receive the true output cardinality as
//! their optimizer hint (and so, exceptionally, does nothing in our
//! operator — it never uses one).
//!
//! Expected shape: all algorithms are similar while K fits the caches;
//! each fixed-pass baseline degrades past its design limit (L3, Σ L3,
//! 256·L3 marks); ADAPTIVE degrades gracefully and leads for large K.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig08 [rows_log2]
//! ```

use hsa_baselines::{all_baselines, BaselineConfig};
use hsa_bench::*;
use hsa_core::{AdaptiveParams, Strategy};
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig08");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(3);
    let baselines = all_baselines();

    println!(
        "# Figure 8: DISTINCT on uniform data vs prior work, N = 2^{rows_log2}, P = {threads}"
    );
    println!("# element time in ns; baselines get k_hint = true K (§6.4)");
    let mut header = vec!["log2(K)".to_string(), "ADAPTIVE".to_string()];
    header.extend(baselines.iter().map(|b| b.name().to_string()));
    out.header(&header);

    for k in k_sweep(4, rows_log2) {
        let keys = generate(Distribution::Uniform, n, k, 42);
        let mut line = vec![format!("{}", k.ilog2())];

        let cfg = sweep_cfg(Strategy::Adaptive(AdaptiveParams::default()), threads);
        let (secs, _) = time_distinct(&keys, &cfg, repeats);
        line.push(format!("{:.1}", element_time_ns(secs, threads, n, 1)));

        let bcfg = BaselineConfig {
            threads,
            k_hint: k as usize,
            count: false,
            ..BaselineConfig::default()
        };
        for b in &baselines {
            let (secs, _) = median_secs(repeats, || b.run(&keys, &bcfg));
            line.push(format!("{:.1}", element_time_ns(secs, threads, n, 1)));
        }
        out.row(&line);
    }
}
