//! Figure 11 (Appendix A.2): impact of the switch-back constant c.
//!
//! ADAPTIVE on uniform data for several K, sweeping c. Expectations from
//! the paper: c is irrelevant while K fits one table (never switches);
//! c → 0 degenerates towards HASHINGONLY (slow for large K); growing c
//! approaches PARTITIONALWAYS throughput with diminishing returns — the
//! paper quotes ~17% off at c = 5, ~5–11% at c = 10, ~4–5% at c = 20, and
//! picks c = 10.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig11 [rows_log2]
//! ```

use hsa_bench::*;
use hsa_core::{AdaptiveParams, Strategy};
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig11");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(3);

    println!("# Figure 11: impact of switch-back constant c, uniform, N = 2^{rows_log2}");
    out.header(&cells!["log2(K)", "c", "ns/element", "switches to part", "switches back"]);

    for k in [1u64 << 10, 1 << 16, 1u64 << (rows_log2 - 2)] {
        let keys = generate(Distribution::Uniform, n, k, 42);
        for c in [0.25, 1.0, 2.0, 5.0, 10.0, 20.0, 100.0] {
            let cfg = sweep_cfg(Strategy::Adaptive(AdaptiveParams { alpha0: 11.0, c }), threads);
            let (secs, stats) = time_distinct(&keys, &cfg, repeats);
            out.row(&cells![
                k.ilog2(),
                c,
                format!("{:.1}", element_time_ns(secs, threads, n, 1)),
                stats.switches_to_partitioning,
                stats.switches_to_hashing
            ]);
        }
    }
}
