//! Figure 6: speedup with the number of cores (§6.2).
//!
//! The paper reports near-linear speedup (≈16 on 20 cores) for every K,
//! because the threads share nothing and synchronize only at run
//! boundaries. **Substitution note:** this host exposes a limited number
//! of hardware threads (often one); the experiment still exercises the
//! full multi-threaded code path — work-stealing morsels, shared level-1
//! buckets, parallel bucket recursion — and reports whatever speedup the
//! host allows. On a single core the expected result is a flat line at
//! ≈1.0 with bounded overhead, which is itself a meaningful check: the
//! parallel machinery must not cost measurable time when it cannot help.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig06 [rows_log2] [max_threads]
//! ```

use hsa_bench::*;
use hsa_core::{AdaptiveParams, Strategy};
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig06");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let max_threads: usize = arg(2).unwrap_or_else(|| default_threads().max(4));
    let n = 1usize << rows_log2;
    let repeats = repeats_for(n).min(3);

    println!(
        "# Figure 6: speedup vs threads, uniform, N = 2^{rows_log2} (host parallelism: {})",
        default_threads()
    );
    out.header(&cells!["log2(K)", "threads", "seconds", "speedup vs 1 thread"]);

    for k in [1u64 << 6, 1 << 12, 1 << 18] {
        let keys = generate(Distribution::Uniform, n, k, 42);
        let mut base = None;
        let mut t = 1;
        while t <= max_threads {
            let cfg = sweep_cfg(Strategy::Adaptive(AdaptiveParams::default()), t);
            let (secs, _) = time_distinct(&keys, &cfg, repeats);
            let baseline = *base.get_or_insert(secs);
            out.row(&cells![k.ilog2(), t, format!("{secs:.4}"), format!("{:.2}", baseline / secs)]);
            t *= 2;
        }
    }
}
