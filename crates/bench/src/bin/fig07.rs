//! Figure 7: scalability with the number of aggregate columns (§6.3).
//!
//! `SELECT k, SUM(v₁), …, SUM(v_C) GROUP BY k` for C = 0, 1, 2, 4, 8. The
//! element-time metric divides by the total column count (C + 1), so the
//! paper's claim is a *flat* line per K: each additional column costs the
//! same as the grouping column or slightly less (no hashing, no collision
//! handling — just the mapping replay).
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig07 [rows_log2]
//! ```

use hsa_agg::AggSpec;
use hsa_bench::*;
use hsa_core::{aggregate, AdaptiveParams, Strategy};
use hsa_datagen::{generate, generate_values, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig07");
    let rows_log2: u32 = arg(1).unwrap_or(21);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(3);

    println!("# Figure 7: ns per element-cell vs number of aggregate columns, N = 2^{rows_log2}");
    println!("# expectation: roughly flat per K (columns scale linearly)");
    out.header(&cells!["log2(K)", "C", "ns/element-cell", "total seconds"]);

    let value_cols: Vec<Vec<u64>> = (0..8).map(|i| generate_values(n, 100 + i)).collect();

    for k in [1u64 << 8, 1 << 14, 1 << 18] {
        let keys = generate(Distribution::Uniform, n, k, 42);
        for c in [0usize, 1, 2, 4, 8] {
            let inputs: Vec<&[u64]> = value_cols[..c].iter().map(Vec::as_slice).collect();
            let specs: Vec<AggSpec> = (0..c).map(AggSpec::sum).collect();
            let cfg = sweep_cfg(Strategy::Adaptive(AdaptiveParams::default()), threads);
            let (secs, _) = median_secs(repeats, || aggregate(&keys, &inputs, &specs, &cfg));
            out.row(&cells![
                k.ilog2(),
                c,
                format!("{:.2}", element_time_ns(secs, threads, n, c + 1)),
                format!("{secs:.4}")
            ]);
        }
    }
}
