//! Figure 10 (Appendix A.1): determining the switching threshold α₀.
//!
//! HASHINGONLY and PARTITIONALWAYS(1) are run on data sets whose spatial
//! locality is parameterized (by varying K for the three locality-bearing
//! distributions). For each data set we record the *observed* first-pass
//! reduction factor α = N / (rows entering pass 2) and both run times.
//! Plotting time against α, the two strategies cross in a band of α; the
//! paper finds the crossings at α ∈ [7, 16] and picks α₀ ≈ 11.
//!
//! ```sh
//! cargo run --release -p hsa-bench --bin fig10 [rows_log2]
//! ```

use hsa_bench::*;
use hsa_core::Strategy;
use hsa_datagen::{generate, Distribution};

fn main() {
    let mut out = Sidecar::from_args("fig10");
    let rows_log2: u32 = arg(1).unwrap_or(22);
    let n = 1usize << rows_log2;
    let threads = default_threads();
    let repeats = repeats_for(n).min(3);

    println!("# Figure 10: HashingOnly vs PartitionAlways(1) as a function of observed alpha");
    println!("# N = 2^{rows_log2}; alpha = N / rows entering pass 2 under HashingOnly");
    out.header(&cells![
        "distribution",
        "log2(K)",
        "alpha",
        "HashingOnly ns/el",
        "Partition(1) ns/el",
        "hash wins"
    ]);

    let mut crossovers: Vec<f64> = Vec::new();
    for dist in [
        Distribution::MovingCluster,
        Distribution::SelfSimilar,
        Distribution::HeavyHitter,
        Distribution::Uniform,
    ] {
        let mut last: Option<(f64, bool)> = None;
        for e in (8..=rows_log2).step_by(2) {
            let k = 1u64 << e;
            let keys = generate(dist, n, k, 42);

            let (h_secs, h_stats) =
                time_distinct(&keys, &sweep_cfg(Strategy::HashingOnly, threads), repeats);
            let pass2_rows: u64 = h_stats.hash_rows_per_level.iter().skip(1).sum::<u64>().max(1);
            let alpha = n as f64 / pass2_rows as f64;

            let (p_secs, _) = time_distinct(
                &keys,
                &sweep_cfg(Strategy::PartitionAlways { passes: 1 }, threads),
                repeats,
            );

            let h_ns = element_time_ns(h_secs, threads, n, 1);
            let p_ns = element_time_ns(p_secs, threads, n, 1);
            let hash_wins = h_ns < p_ns;
            out.row(&cells![
                dist.name(),
                e,
                format!("{alpha:.1}"),
                format!("{h_ns:.1}"),
                format!("{p_ns:.1}"),
                hash_wins
            ]);
            if let Some((prev_alpha, prev_wins)) = last {
                if prev_wins != hash_wins {
                    crossovers.push((alpha * prev_alpha).sqrt());
                }
            }
            last = Some((alpha, hash_wins));
        }
    }
    if crossovers.is_empty() {
        println!("# no crossover observed in this sweep");
    } else {
        let geo: f64 =
            (crossovers.iter().map(|a| a.ln()).sum::<f64>() / crossovers.len() as f64).exp();
        println!(
            "# crossovers at alpha = {:?} -> suggested alpha0 ≈ {geo:.1} (paper: [7,16], ≈11)",
            crossovers.iter().map(|a| format!("{a:.1}")).collect::<Vec<_>>()
        );
    }
}
