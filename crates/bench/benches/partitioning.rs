//! Microbenchmarks for §4.2: the Figure 3 partitioning ladder at a
//! cache-friendly size (`cargo bench --bench partitioning`; the `fig03`
//! binary covers the full-size memory-bound measurement).
//!
//! Plain `harness = false` timing: median of repeats, GiB/s on stdout.

use hsa_bench::{bandwidth_gib_s, median_secs, random_keys};
use hsa_partition::{
    memcpy_nt, partition_naive, partition_swc_with_mode, partition_unrolled_with_mode, FlushMode,
};
use std::hint::black_box;

const REPEATS: usize = 5;

fn main() {
    let data = random_keys(1 << 20, 42);
    let n = data.len();
    let murmur = hsa_hash::Murmur2::default();
    let identity = hsa_hash::Identity;

    let report = |name: &str, secs: f64| {
        println!("partition_2^20/{name:<16} {:6.2} GiB/s", bandwidth_gib_s(secs, n));
    };

    let mut dst = Vec::new();
    let (t, _) = median_secs(REPEATS, || {
        memcpy_nt(&mut dst, black_box(&data));
        black_box(&dst);
    });
    report("memcpy_nt", t);

    let (t, _) =
        median_secs(REPEATS, || black_box(partition_naive(data.iter().copied(), identity, 0)));
    report("naive_key", t);

    let (t, _) =
        median_secs(REPEATS, || black_box(partition_naive(data.iter().copied(), murmur, 0)));
    report("naive_hash", t);

    let (t, _) = median_secs(REPEATS, || {
        black_box(partition_swc_with_mode(data.iter().copied(), murmur, 0, FlushMode::Cached))
    });
    report("swc_cached", t);

    let (t, _) = median_secs(REPEATS, || {
        black_box(partition_swc_with_mode(data.iter().copied(), murmur, 0, FlushMode::Streaming))
    });
    report("swc_streaming", t);

    let (t, _) = median_secs(REPEATS, || {
        black_box(partition_unrolled_with_mode(&data, murmur, 0, FlushMode::Cached))
    });
    report("unrolled_cached", t);
}
