//! Criterion microbenchmarks for §4.2: the Figure 3 partitioning ladder
//! at a cache-friendly size (the `fig03` binary covers the full-size
//! memory-bound measurement).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hsa_partition::{
    memcpy_nt, partition_naive, partition_swc_with_mode, partition_unrolled_with_mode, FlushMode,
};
use std::hint::black_box;

fn keys(n: usize) -> Vec<u64> {
    let mut s = 1u64;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s ^ (s >> 31)
        })
        .collect()
}

fn bench_partitioning(c: &mut Criterion) {
    let data = keys(1 << 20);
    let murmur = hsa_hash::Murmur2::default();
    let identity = hsa_hash::Identity;

    let mut g = c.benchmark_group("partition_2^20");
    g.throughput(Throughput::Bytes((data.len() * 8) as u64));
    g.sample_size(10);

    g.bench_function("memcpy_nt", |b| {
        let mut dst = Vec::new();
        b.iter(|| memcpy_nt(&mut dst, black_box(&data)))
    });
    g.bench_function("naive_key", |b| {
        b.iter(|| partition_naive(data.iter().copied(), identity, 0))
    });
    g.bench_function("naive_hash", |b| {
        b.iter(|| partition_naive(data.iter().copied(), murmur, 0))
    });
    g.bench_function("swc_cached", |b| {
        b.iter(|| partition_swc_with_mode(data.iter().copied(), murmur, 0, FlushMode::Cached))
    });
    g.bench_function("swc_streaming", |b| {
        b.iter(|| partition_swc_with_mode(data.iter().copied(), murmur, 0, FlushMode::Streaming))
    });
    g.bench_function("unrolled_cached", |b| {
        b.iter(|| partition_unrolled_with_mode(&data, murmur, 0, FlushMode::Cached))
    });
    g.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
