//! Microbenchmarks for §4.1: hash-function cost and in-cache hash-table
//! insertion cost (`cargo bench --bench hashing`).
//!
//! Paper claims to check: MurmurHash2 is the fastest adequate hash for
//! 8-byte keys, and the tuned table inserts below ~6 ns per element while
//! working in cache (the paper's 2.4 GHz Westmere; scale accordingly).
//!
//! Plain `harness = false` timing: median of repeats over a fixed
//! iteration count, ns/element on stdout.

use hsa_bench::{median_secs, random_keys};
use hsa_hash::{Fnv1a, Hasher64, Identity, Multiplicative, Murmur2, Murmur3Finalizer};
use hsa_hashtbl::{AggTable, Insert, TableConfig};
use std::hint::black_box;

const REPEATS: usize = 9;

fn bench_hash<H: Hasher64 + Copy>(name: &str, h: H, data: &[u64]) {
    let (secs, acc) = median_secs(REPEATS, || {
        let mut acc = 0u64;
        for _ in 0..8 {
            for &k in data {
                acc ^= h.hash_u64(black_box(k));
            }
        }
        acc
    });
    black_box(acc);
    let per = secs * 1e9 / (data.len() * 8) as f64;
    println!("hash_u64/{name:<16} {per:6.2} ns/el");
}

fn bench_hash_functions() {
    let data = random_keys(1 << 14, 42);
    bench_hash("murmur2", Murmur2::default(), &data);
    bench_hash("murmur3_fmix", Murmur3Finalizer::default(), &data);
    bench_hash("multiplicative", Multiplicative::default(), &data);
    bench_hash("fnv1a", Fnv1a::default(), &data);
    bench_hash("identity", Identity, &data);
}

fn bench_table_insert() {
    // In-cache table: 2^16 slots (512 KiB of keys), 25% fill = 16 Ki groups.
    let cfg = TableConfig { total_slots: 1 << 16, fill_percent: 25 };
    let h = Murmur2::default();
    // 8 Ki distinct keys (half the fill limit) repeated twice: half
    // inserts, half hits, never Full.
    let mut data = random_keys(1 << 13, 42);
    let copy = data.clone();
    data.extend(copy);

    let (secs, _) = median_secs(REPEATS, || {
        let mut t = AggTable::new(cfg, 0, &[]);
        for &k in &data {
            match t.insert_key(k, h.hash_u64(k)) {
                Insert::Full => unreachable!("sized for the data"),
                other => {
                    black_box(&other);
                }
            }
        }
        t
    });
    let per = secs * 1e9 / data.len() as f64;
    println!("agg_table/insert_in_cache {per:6.2} ns/el (paper: <6 ns at 2.4 GHz)");
}

fn main() {
    bench_hash_functions();
    bench_table_insert();
}
