//! Criterion microbenchmarks for §4.1: hash-function cost and in-cache
//! hash-table insertion cost.
//!
//! Paper claims to check: MurmurHash2 is the fastest adequate hash for
//! 8-byte keys, and the tuned table inserts below ~6 ns per element while
//! working in cache (the paper's 2.4 GHz Westmere; scale accordingly).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hsa_hash::{Fnv1a, Hasher64, Identity, Multiplicative, Murmur2, Murmur3Finalizer};
use hsa_hashtbl::{AggTable, Insert, TableConfig};
use std::hint::black_box;

fn keys(n: usize) -> Vec<u64> {
    let mut s = 1u64;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s ^ (s >> 31)
        })
        .collect()
}

fn bench_hash_functions(c: &mut Criterion) {
    let data = keys(1 << 14);
    let mut g = c.benchmark_group("hash_u64");
    g.throughput(Throughput::Elements(data.len() as u64));

    macro_rules! hash_bench {
        ($name:literal, $h:expr) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &k in &data {
                        acc ^= $h.hash_u64(black_box(k));
                    }
                    acc
                })
            });
        };
    }
    hash_bench!("murmur2", Murmur2::default());
    hash_bench!("murmur3_fmix", Murmur3Finalizer::default());
    hash_bench!("multiplicative", Multiplicative::default());
    hash_bench!("fnv1a", Fnv1a::default());
    hash_bench!("identity", Identity);
    g.finish();
}

fn bench_table_insert(c: &mut Criterion) {
    // In-cache table: 2^16 slots (512 KiB of keys), 25% fill = 16 Ki groups.
    let cfg = TableConfig { total_slots: 1 << 16, fill_percent: 25 };
    let h = Murmur2::default();
    // 8 Ki distinct keys (half the fill limit) repeated twice: half
    // inserts, half hits, never Full.
    let mut data = keys(1 << 13);
    let copy = data.clone();
    data.extend(copy);

    let mut g = c.benchmark_group("agg_table");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("insert_in_cache", |b| {
        b.iter_batched(
            || AggTable::new(cfg, 0, &[]),
            |mut t| {
                for &k in &data {
                    match t.insert_key(k, h.hash_u64(k)) {
                        Insert::Full => unreachable!("sized for the data"),
                        other => {
                            black_box(other);
                        }
                    }
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_hash_functions, bench_table_insert);
criterion_main!(benches);
