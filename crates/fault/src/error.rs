//! The error taxonomy of the fallible operator API.

use crate::cancel::CancelReason;
use std::fmt;

/// Everything that can go wrong in one operator invocation.
///
/// The `Display` messages of the input-validation variants deliberately
/// contain the exact phrases the historical panicking API used
/// ("row count mismatch", "missing input column", "different aggregate
/// specs"), so the infallible wrappers can panic with `{err}` and stay
/// drop-in compatible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggError {
    /// An aggregate input column has a different row count than the keys.
    RowCountMismatch {
        /// Index of the offending input column.
        column: usize,
        /// Rows in that column.
        got: usize,
        /// Rows in the key column.
        expected: usize,
    },
    /// An aggregate spec references an input column that was not supplied.
    MissingInputColumn {
        /// The referenced column index.
        referenced: usize,
        /// How many input columns were supplied.
        available: usize,
    },
    /// An aggregate other than COUNT was built without an input column
    /// (possible through the pub fields of `AggSpec`, not its
    /// constructors).
    SpecNeedsInput {
        /// Index of the offending spec.
        spec: usize,
    },
    /// `merge_partials` received partials produced by different specs.
    MismatchedSpecs,
    /// A query referenced a column the table does not have.
    UnknownColumn(String),
    /// A query had no grouping column.
    EmptyGroupBy,
    /// A memory reservation was denied (after all degradation options
    /// were exhausted).
    BudgetExceeded {
        /// Bytes the denied reservation asked for.
        requested: u64,
        /// The budget's limit in bytes.
        limit: u64,
        /// Bytes already reserved when the request was denied.
        reserved: u64,
    },
    /// A spill write or restore failed. Spilling is the escape hatch for
    /// budget exhaustion, so I/O trouble on the spill path is surfaced as
    /// its own variant rather than folded into `BudgetExceeded`.
    SpillFailed {
        /// The underlying I/O error, rendered (keeps the enum `Eq`).
        message: String,
    },
    /// A spilled run failed verification on restore: a checksum, count,
    /// or magic mismatch that proves the bytes read back are not the
    /// bytes written. Detected corruption is always surfaced — never
    /// silently wrong rows — and is permanent: retrying the read cannot
    /// un-corrupt the file.
    SpillCorrupt {
        /// The spill file, rendered (keeps the enum `Eq`).
        path: String,
        /// 0-based ordinal of the failing extent, or `u64::MAX` when the
        /// failure is not tied to one extent (header, footer, truncation).
        extent: u64,
        /// The value the verifier expected (checksum, count, or magic).
        expected: u64,
        /// The value actually found in the file.
        actual: u64,
        /// What mismatched: `"magic"`, `"shape"`, `"extent header"`,
        /// `"extent crc"`, `"extent words"`, `"extent codec"`,
        /// `"file crc"`, `"extent count"`, `"byte count"`,
        /// `"footer magic"`, or `"truncated"`.
        what: String,
    },
    /// A spill-space reservation was denied by the disk budget: the spill
    /// directory's byte cap (`--spill-limit`) would be crossed. The disk
    /// rung is the last one on the degradation ladder, so this surfaces
    /// as a hard typed error, mirroring `BudgetExceeded` for memory.
    DiskBudgetExceeded {
        /// Bytes the denied spill asked for.
        requested: u64,
        /// The spill budget's limit in bytes.
        limit: u64,
        /// Bytes already reserved when the request was denied.
        reserved: u64,
    },
    /// The operator was cancelled cooperatively.
    Cancelled(CancelReason),
    /// A worker task panicked; the scope was drained and the payload
    /// message captured instead of re-raising.
    WorkerPanic {
        /// The panic payload, if it was a string (the common case).
        message: String,
    },
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::RowCountMismatch { column, got, expected } => write!(
                f,
                "aggregate input column {column} row count mismatch: {got} rows, keys have {expected}"
            ),
            AggError::MissingInputColumn { referenced, available } => write!(
                f,
                "aggregate references missing input column {referenced} ({available} supplied)"
            ),
            AggError::SpecNeedsInput { spec } => {
                write!(f, "aggregate spec {spec} needs an input column")
            }
            AggError::MismatchedSpecs => {
                write!(f, "partials were produced with different aggregate specs")
            }
            AggError::UnknownColumn(name) => write!(f, "no column named {name:?}"),
            AggError::EmptyGroupBy => write!(f, "query needs at least one GROUP BY column"),
            AggError::BudgetExceeded { requested, limit, reserved } => write!(
                f,
                "memory budget exceeded: requested {requested} B with {reserved} of {limit} B reserved"
            ),
            AggError::SpillFailed { message } => write!(f, "spill I/O failed: {message}"),
            AggError::SpillCorrupt { path, extent, expected, actual, what } => {
                write!(f, "spill file corrupt: {path}: {what} mismatch")?;
                if *extent != u64::MAX {
                    write!(f, " in extent {extent}")?;
                }
                write!(f, " (expected {expected:#x}, found {actual:#x})")
            }
            AggError::DiskBudgetExceeded { requested, limit, reserved } => write!(
                f,
                "spill disk budget exceeded: requested {requested} B with {reserved} of {limit} B reserved"
            ),
            AggError::Cancelled(reason) => write!(f, "operator cancelled: {reason}"),
            AggError::WorkerPanic { message } => write!(f, "worker task panicked: {message}"),
        }
    }
}

impl std::error::Error for AggError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_phrases() {
        let e = AggError::RowCountMismatch { column: 2, got: 5, expected: 7 };
        assert!(e.to_string().contains("aggregate input column 2 row count mismatch"));
        let e = AggError::MissingInputColumn { referenced: 3, available: 1 };
        assert!(e.to_string().contains("missing input column 3"));
        assert!(AggError::MismatchedSpecs.to_string().contains("different aggregate specs"));
    }

    #[test]
    fn display_covers_runtime_variants() {
        let e = AggError::BudgetExceeded { requested: 64, limit: 128, reserved: 100 };
        assert!(e.to_string().contains("memory budget exceeded"));
        assert!(AggError::Cancelled(CancelReason::Requested).to_string().contains("cancelled"));
        assert!(AggError::Cancelled(CancelReason::DeadlineExceeded)
            .to_string()
            .contains("deadline"));
        let e = AggError::WorkerPanic { message: "boom".into() };
        assert!(e.to_string().contains("boom"));
        let e = AggError::SpillFailed { message: "disk full".into() };
        assert!(e.to_string().contains("spill I/O failed: disk full"));
        let e = AggError::SpillCorrupt {
            path: "/tmp/run.bin".into(),
            extent: 3,
            expected: 0xdead,
            actual: 0xbeef,
            what: "extent crc".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("spill file corrupt"), "{msg}");
        assert!(msg.contains("extent 3"), "{msg}");
        assert!(msg.contains("0xdead") && msg.contains("0xbeef"), "{msg}");
        let e = AggError::SpillCorrupt {
            path: "p".into(),
            extent: u64::MAX,
            expected: 1,
            actual: 2,
            what: "truncated".into(),
        };
        assert!(!e.to_string().contains("extent 18446"), "{e}");
        let e = AggError::DiskBudgetExceeded { requested: 64, limit: 128, reserved: 100 };
        assert!(e.to_string().contains("spill disk budget exceeded"));
        assert!(AggError::UnknownColumn("x".into()).to_string().contains("no column named \"x\""));
    }

    #[test]
    fn errors_are_comparable_and_send() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<AggError>();
        assert_eq!(AggError::MismatchedSpecs, AggError::MismatchedSpecs);
        assert_ne!(
            AggError::Cancelled(CancelReason::Requested),
            AggError::Cancelled(CancelReason::DeadlineExceeded)
        );
    }
}
