//! Cooperative cancellation with an optional deadline.

use crate::error::AggError;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an operator invocation was cancelled.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Requested,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Requested => write!(f, "cancellation requested"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation token, checked by the driver at morsel and
/// bucket-task boundaries (the row-level loops never poll it).
///
/// Cloning shares the flag. The default token ([`CancelToken::none`])
/// never cancels and costs one null check per poll.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A token that never cancels.
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// A cancellable token with no deadline.
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(CancelInner { flag: AtomicBool::new(false), deadline: None })) }
    }

    /// A cancellable token that also trips once `timeout` has elapsed
    /// (measured from now).
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            inner: Some(Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            })),
        }
    }

    /// True if this token can ever cancel (i.e. is not
    /// [`CancelToken::none`]).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Request cancellation. Idempotent; a no-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            // ORDERING: Release; site: trip; pairs-with: flag.observe —
            // work the canceller did before cancelling is visible to
            // tasks that observe the trip and unwind.
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Why this token is cancelled, if it is.
    pub fn cancelled(&self) -> Option<CancelReason> {
        let inner = self.inner.as_ref()?;
        // ORDERING: Acquire; site: observe; pairs-with: flag.trip —
        // the tripped flag carries the canceller's prior writes.
        if inner.flag.load(Ordering::Acquire) {
            return Some(CancelReason::Requested);
        }
        match inner.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// `Err(AggError::Cancelled)` once the token has tripped.
    pub fn check(&self) -> Result<(), AggError> {
        match self.cancelled() {
            Some(reason) => Err(AggError::Cancelled(reason)),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "CancelToken::none"),
            Some(_) => write!(f, "CancelToken {{ cancelled: {:?} }}", self.cancelled()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancelToken::none();
        t.cancel();
        assert_eq!(t.cancelled(), None);
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(t2.check().is_ok());
        t.cancel();
        assert_eq!(t2.cancelled(), Some(CancelReason::Requested));
        assert_eq!(t2.check(), Err(AggError::Cancelled(CancelReason::Requested)));
    }

    #[test]
    fn deadline_trips_after_timeout() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        assert_eq!(t.cancelled(), Some(CancelReason::DeadlineExceeded));
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(far.cancelled(), None);
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        t.cancel();
        assert_eq!(t.cancelled(), Some(CancelReason::Requested));
    }
}
