//! Shared atomic memory accounting with RAII release.

use crate::error::AggError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct BudgetInner {
    /// Hard limit in bytes.
    limit: u64,
    /// Bytes currently reserved.
    reserved: AtomicU64,
    /// Reservations denied over the budget's lifetime.
    denials: AtomicU64,
    /// Highest value `reserved` ever reached (monotonic).
    high_water: AtomicU64,
}

/// A shared memory budget: every structure that grows reserves its bytes
/// here *before* allocating and releases them when it is dropped.
///
/// Cloning shares the underlying account. The unlimited budget is a
/// `None` — reservation against it is a null check plus constructing a
/// no-op [`Reservation`], so the infallible fast path pays nothing
/// measurable.
///
/// Accounting is advisory, not an allocator hook: sites reserve their
/// *payload* bytes (8 bytes per u64 of keys, state columns, and table
/// slots). Container capacity rounding and small fixed overheads are not
/// tracked; the invariant that matters is that reservations are balanced —
/// whatever an invocation reserves is released by the time it returns,
/// on every path including errors, cancellation, and contained panics.
#[derive(Clone, Default)]
pub struct MemoryBudget {
    inner: Option<Arc<BudgetInner>>,
}

impl MemoryBudget {
    /// No limit; all accounting is skipped.
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A budget of `limit_bytes` shared by all clones.
    pub fn limited(limit_bytes: u64) -> Self {
        Self {
            inner: Some(Arc::new(BudgetInner {
                limit: limit_bytes,
                reserved: AtomicU64::new(0),
                denials: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this budget enforces a limit.
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// The limit in bytes (`None` when unlimited).
    pub fn limit(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.limit)
    }

    /// Bytes currently reserved (0 when unlimited). After an operator
    /// invocation returns — `Ok` or `Err` — this is back to whatever it
    /// was before the call; the fault-injection suite asserts it.
    pub fn outstanding(&self) -> u64 {
        // ORDERING: Acquire; site: balance; pairs-with: reserved.rmw —
        // a balance observed after an operator returns reflects every
        // reservation that operator made and dropped.
        self.inner.as_ref().map_or(0, |i| i.reserved.load(Ordering::Acquire))
    }

    /// Highest concurrently reserved byte count this budget ever saw
    /// (0 when unlimited — an unlimited budget tracks nothing). Monotonic
    /// over the budget's lifetime; read it after the operator has
    /// returned to learn the run's peak accounted footprint.
    pub fn high_water(&self) -> u64 {
        // ORDERING: Relaxed — a monotonic statistic read after the fact;
        // no other memory is published through it.
        self.inner.as_ref().map_or(0, |i| i.high_water.load(Ordering::Relaxed))
    }

    /// Reservations denied so far (0 when unlimited).
    pub fn denials(&self) -> u64 {
        // ORDERING: Relaxed — a monotonic statistics counter; no other
        // memory is published through it.
        self.inner.as_ref().map_or(0, |i| i.denials.load(Ordering::Relaxed))
    }

    /// Reserve `bytes`, failing with [`AggError::BudgetExceeded`] if the
    /// limit would be crossed. The returned [`Reservation`] releases the
    /// bytes when dropped.
    pub fn try_reserve(&self, bytes: u64) -> Result<Reservation, AggError> {
        let Some(inner) = &self.inner else {
            return Ok(Reservation { budget: None, bytes });
        };
        // ORDERING: Relaxed — only a hint seeding the CAS loop; the
        // compare_exchange below revalidates against the real value.
        let mut current = inner.reserved.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_add(bytes);
            if new > inner.limit {
                // ORDERING: Relaxed — statistics counter (see `denials`).
                inner.denials.fetch_add(1, Ordering::Relaxed);
                return Err(AggError::BudgetExceeded {
                    requested: bytes,
                    limit: inner.limit,
                    reserved: current,
                });
            }
            // ORDERING: AcqRel/Relaxed; site: rmw; pairs-with: reserved.balance —
            // success chains reserve/release RMWs into a single
            // modification order the Acquire readers observe; the failed
            // side only retries, the value is not acted on.
            match inner.reserved.compare_exchange_weak(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // ORDERING: Relaxed — the high-water max-CAS is a
                    // monotonic statistic; no other memory rides on it and
                    // it is read only after the fact, so no ordering with
                    // the reserve CAS above is needed.
                    let mut hw = inner.high_water.load(Ordering::Relaxed);
                    while new > hw {
                        match inner.high_water.compare_exchange_weak(
                            hw,
                            new,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(observed) => hw = observed,
                        }
                    }
                    return Ok(Reservation { budget: Some(Arc::clone(inner)), bytes });
                }
                Err(observed) => current = observed,
            }
        }
    }
}

impl std::fmt::Debug for MemoryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "MemoryBudget::unlimited"),
            Some(i) => f
                .debug_struct("MemoryBudget")
                .field("limit", &i.limit)
                // ORDERING: Relaxed — debug snapshot, no synchronization.
                .field("reserved", &i.reserved.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

/// A granted memory reservation. Releases its bytes back to the budget on
/// drop — including unwinds and cancelled tasks — so accounting can never
/// leak. Attach one to the structure whose bytes it covers and let
/// ownership do the bookkeeping.
#[derive(Debug, Default)]
pub struct Reservation {
    budget: Option<Arc<BudgetInner>>,
    bytes: u64,
}

impl Reservation {
    /// A zero-byte reservation against no budget (useful as a neutral
    /// element for [`Reservation::merge`]).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Bytes this reservation covers.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Fold `other` into `self`. Both must come from the same budget (or
    /// either side from none); the merged reservation releases the sum.
    pub fn merge(&mut self, other: Reservation) {
        debug_assert!(
            match (&self.budget, &other.budget) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => true,
            },
            "merging reservations from different budgets"
        );
        if self.budget.is_none() {
            self.budget = other.budget.clone();
        }
        self.bytes += other.bytes;
        // `other`'s release is now self's responsibility.
        let mut other = other;
        other.budget = None;
        other.bytes = 0;
    }

    /// Split off up to `bytes` into a new reservation (saturating at what
    /// is left). Lets a pass reserve once up front and hand per-run slices
    /// of the grant to the runs it emits.
    pub fn take(&mut self, bytes: u64) -> Reservation {
        let granted = bytes.min(self.bytes);
        self.bytes -= granted;
        Reservation { budget: self.budget.clone(), bytes: granted }
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if let Some(inner) = &self.budget {
            // ORDERING: AcqRel; site: rmw; pairs-with: reserved.balance —
            // the release side of the reserve CAS; an Acquire read of the
            // balance afterwards sees the bytes returned (outstanding()
            // == 0 after drops is asserted by the fault suite).
            inner.reserved.fetch_sub(self.bytes, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_grants() {
        let b = MemoryBudget::unlimited();
        assert!(!b.is_limited());
        let r = b.try_reserve(u64::MAX).unwrap();
        assert_eq!(r.bytes(), u64::MAX);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn limited_budget_grants_and_releases() {
        let b = MemoryBudget::limited(100);
        let r1 = b.try_reserve(60).unwrap();
        assert_eq!(b.outstanding(), 60);
        let denied = b.try_reserve(50);
        assert_eq!(
            denied.unwrap_err(),
            AggError::BudgetExceeded { requested: 50, limit: 100, reserved: 60 }
        );
        assert_eq!(b.denials(), 1);
        drop(r1);
        assert_eq!(b.outstanding(), 0);
        let _r2 = b.try_reserve(100).unwrap();
        assert_eq!(b.outstanding(), 100);
    }

    #[test]
    fn clones_share_the_account() {
        let b = MemoryBudget::limited(10);
        let b2 = b.clone();
        let _r = b.try_reserve(8).unwrap();
        assert_eq!(b2.outstanding(), 8);
        assert!(b2.try_reserve(4).is_err());
    }

    #[test]
    fn merge_combines_release() {
        let b = MemoryBudget::limited(100);
        let mut r = b.try_reserve(10).unwrap();
        r.merge(b.try_reserve(20).unwrap());
        r.merge(Reservation::empty());
        assert_eq!(r.bytes(), 30);
        assert_eq!(b.outstanding(), 30);
        drop(r);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn take_splits_without_double_release() {
        let b = MemoryBudget::limited(100);
        let mut r = b.try_reserve(50).unwrap();
        let part = r.take(20);
        assert_eq!(part.bytes(), 20);
        assert_eq!(r.bytes(), 30);
        assert_eq!(b.outstanding(), 50);
        drop(part);
        assert_eq!(b.outstanding(), 30);
        let over = r.take(100);
        assert_eq!(over.bytes(), 30, "take saturates at the remainder");
        drop(over);
        drop(r);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn release_happens_on_unwind() {
        let b = MemoryBudget::limited(100);
        let b2 = b.clone();
        let result = std::panic::catch_unwind(move || {
            let _r = b2.try_reserve(70).unwrap();
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn concurrent_reservations_stay_within_limit() {
        let b = MemoryBudget::limited(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(r) = b.try_reserve(7) {
                            assert!(b.outstanding() <= 1000);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn high_water_is_the_peak_not_the_balance() {
        let b = MemoryBudget::limited(100);
        assert_eq!(b.high_water(), 0);
        let r1 = b.try_reserve(60).unwrap();
        let r2 = b.try_reserve(30).unwrap();
        assert_eq!(b.high_water(), 90);
        drop(r1);
        drop(r2);
        assert_eq!(b.outstanding(), 0);
        // The mark survives release and only moves up.
        let _r3 = b.try_reserve(40).unwrap();
        assert_eq!(b.high_water(), 90);
        assert_eq!(MemoryBudget::unlimited().high_water(), 0);
    }

    #[test]
    fn high_water_under_contention_is_bounded_and_reached() {
        let b = MemoryBudget::limited(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(_r) = b.try_reserve(125) {
                            assert!(b.high_water() <= 1000);
                        }
                    }
                });
            }
        });
        // Every grant raised the mark at least to its own new balance.
        assert!(b.high_water() >= 125);
        assert!(b.high_water() <= 1000);
    }
}
