//! Robustness primitives for the aggregation operator.
//!
//! The operator is cache-*bounded* by design (§4.1: "one or very few hash
//! tables per thread"), but a production `GROUP BY` also has to bound the
//! rest of the pipeline and fail cleanly when it cannot. This crate holds
//! the building blocks, deliberately free of any operator knowledge so
//! every layer of the workspace can use them:
//!
//! * [`AggError`] — the typed error taxonomy of the fallible operator API.
//! * [`MemoryBudget`] / [`Reservation`] — shared atomic reserve/release
//!   accounting with RAII release, so reservations cannot leak across
//!   early returns, cancelled tasks, or contained panics.
//! * [`DiskBudget`] / [`DiskReservation`] — the same accounting for spill
//!   disk space, so a bounded spill directory degrades with a typed error
//!   instead of a mid-write `ENOSPC`.
//! * [`CancelToken`] — cooperative cancellation with an optional deadline,
//!   checked at morsel and bucket-task granularity.
//! * [`FaultPlan`] / [`FaultInjector`] — a deterministic fault-injection
//!   harness (fail the Nth allocation, panic in the Nth task, cancel after
//!   K rows, misbehave on the Nth spill write/read) for exercising every
//!   error path without mocking allocators or filesystems.
//! * [`classify_io`] / [`RetryPolicy`] — the spill I/O error taxonomy
//!   (transient vs permanent) and a clockless bounded-retry policy whose
//!   decisions depend only on the attempt counter, keeping fault sweeps
//!   and Miri runs deterministic.
//! * [`AdmissionController`] / [`QueryGrant`] — the serving-mode ledger
//!   that carves per-query memory/disk slices, deadlines, and cancel
//!   tokens out of global budgets, with typed
//!   [`AdmissionOutcome::Denied`] / [`AdmissionOutcome::Queued`] outcomes
//!   and RAII release of every slice.
//!
//! Everything here is dependency-free and costs a single null check when
//! disabled: the unlimited budget, the never-cancelled token, and the
//! empty fault plan are all a `None` behind an `Option<Arc<_>>`.

mod admission;
mod budget;
mod cancel;
mod disk;
mod error;
mod inject;
mod io;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDenied, AdmissionOutcome, AdmissionRequest,
    QueryGrant,
};
pub use budget::{MemoryBudget, Reservation};
pub use cancel::{CancelReason, CancelToken};
pub use disk::{DiskBudget, DiskReservation};
pub use error::AggError;
pub use inject::{FaultInjector, FaultPlan, SpillFault, SpillFaultKind};
pub use io::{classify_io, is_transient_io, IoClass, RetryPolicy};
