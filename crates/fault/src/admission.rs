//! Admission control: carving per-query resource grants out of global
//! budgets.
//!
//! A serving process has *one* pool of memory, disk, and concurrency to
//! hand out. The [`AdmissionController`] owns that ledger: each admitted
//! query receives a [`QueryGrant`] — its own [`MemoryBudget`] slice,
//! [`DiskBudget`] slice, and [`CancelToken`] (with an optional deadline) —
//! and the grant returns its slices to the ledger on drop, on every path
//! including panics. Queries that cannot run *now* get a typed
//! [`AdmissionOutcome::Queued`]; queries that could *never* run against
//! the configured globals get [`AdmissionOutcome::Denied`] immediately, so
//! callers can distinguish "retry later" from "lower your ask".
//!
//! The controller is engine-agnostic on purpose (this crate knows nothing
//! about plans or tables): the caller assembles its `ExecEnv` from the
//! grant's parts.

use crate::budget::MemoryBudget;
use crate::cancel::CancelToken;
use crate::disk::DiskBudget;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Global resource ceilings one [`AdmissionController`] hands out.
#[derive(Clone, Debug, Default)]
pub struct AdmissionConfig {
    /// Total operator memory available to all admitted queries, in bytes
    /// (`None` = unmetered; per-query asks are granted as unlimited
    /// budgets unless the query caps itself).
    pub memory_bytes: Option<u64>,
    /// Total spill-disk space available to all admitted queries, in bytes
    /// (`None` = unmetered).
    pub disk_bytes: Option<u64>,
    /// Maximum queries admitted at once (`None` = unbounded).
    pub max_queries: Option<usize>,
}

/// What one query asks the controller for.
#[derive(Clone, Debug, Default)]
pub struct AdmissionRequest {
    /// Memory slice wanted, in bytes. `None` asks for the controller's
    /// default slice (an even share of the global pool under the
    /// concurrency cap, or unlimited when the pool is unmetered).
    pub memory_bytes: Option<u64>,
    /// Spill-disk slice wanted, in bytes. `None` mirrors `memory_bytes`.
    pub disk_bytes: Option<u64>,
    /// Wall-clock deadline for the query; the grant's [`CancelToken`]
    /// trips once it elapses.
    pub deadline: Option<Duration>,
}

/// Why a query was not admitted and never will be under this
/// configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionDenied {
    /// The memory ask alone exceeds the global pool.
    MemoryAskTooLarge {
        /// Bytes requested.
        requested: u64,
        /// The whole pool.
        pool: u64,
    },
    /// The disk ask alone exceeds the global pool.
    DiskAskTooLarge {
        /// Bytes requested.
        requested: u64,
        /// The whole pool.
        pool: u64,
    },
    /// The controller is shutting down and admits nothing.
    ShuttingDown,
}

impl fmt::Display for AdmissionDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionDenied::MemoryAskTooLarge { requested, pool } => {
                write!(f, "memory ask {requested} B exceeds the global pool of {pool} B")
            }
            AdmissionDenied::DiskAskTooLarge { requested, pool } => {
                write!(f, "disk ask {requested} B exceeds the global pool of {pool} B")
            }
            AdmissionDenied::ShuttingDown => write!(f, "admission controller is shutting down"),
        }
    }
}

/// The typed result of [`AdmissionController::try_admit`].
#[derive(Debug)]
pub enum AdmissionOutcome {
    /// Admitted now; the grant carries the query's resource slices.
    Admitted(QueryGrant),
    /// Not admissible right now (pool exhausted or concurrency cap hit);
    /// retry once a running query finishes, or use
    /// [`AdmissionController::admit_blocking`].
    Queued {
        /// Queries currently holding grants.
        active: usize,
        /// What ran out: `"queries"`, `"memory"`, or `"disk"`.
        waiting_for: &'static str,
    },
    /// Never admissible under the configured globals.
    Denied(AdmissionDenied),
}

struct Ledger {
    mem_used: u64,
    disk_used: u64,
    active: usize,
    shutting_down: bool,
}

struct ControllerInner {
    cfg: AdmissionConfig,
    ledger: Mutex<Ledger>,
    /// Waiters parked in [`AdmissionController::admit_blocking`], woken
    /// whenever a grant releases.
    released: Condvar,
}

/// The global admission ledger. Clone-shared; all clones hand out of the
/// same pools.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<ControllerInner>,
}

impl AdmissionController {
    /// A controller over the given global ceilings.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            inner: Arc::new(ControllerInner {
                cfg,
                ledger: Mutex::new(Ledger {
                    mem_used: 0,
                    disk_used: 0,
                    active: 0,
                    shutting_down: false,
                }),
                released: Condvar::new(),
            }),
        }
    }

    /// The configured ceilings.
    pub fn config(&self) -> &AdmissionConfig {
        &self.inner.cfg
    }

    /// Queries currently holding grants.
    pub fn active(&self) -> usize {
        self.lock().active
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ledger> {
        // A panic while holding the ledger lock leaves plain counters in
        // a consistent state (updates are single assignments), so poison
        // carries no information here.
        self.inner.ledger.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The default per-query slice of a global pool: an even share under
    /// the concurrency cap, or the whole pool when uncapped.
    fn default_slice(&self, pool: u64) -> u64 {
        match self.inner.cfg.max_queries {
            Some(n) if n > 1 => (pool / n as u64).max(1),
            _ => pool,
        }
    }

    fn resolve_asks(&self, req: &AdmissionRequest) -> (Option<u64>, Option<u64>) {
        let mem = match (req.memory_bytes, self.inner.cfg.memory_bytes) {
            (Some(ask), _) => Some(ask),
            (None, Some(pool)) => Some(self.default_slice(pool)),
            (None, None) => None,
        };
        let disk = match (req.disk_bytes, self.inner.cfg.disk_bytes) {
            (Some(ask), _) => Some(ask),
            (None, Some(pool)) => Some(self.default_slice(pool)),
            (None, None) => None,
        };
        (mem, disk)
    }

    /// Try to admit a query right now. Never blocks; returns the typed
    /// outcome.
    pub fn try_admit(&self, req: &AdmissionRequest) -> AdmissionOutcome {
        let (mem_ask, disk_ask) = self.resolve_asks(req);
        let mut ledger = self.lock();
        if ledger.shutting_down {
            return AdmissionOutcome::Denied(AdmissionDenied::ShuttingDown);
        }
        // Impossible asks are denied outright — queueing would wait
        // forever.
        if let (Some(ask), Some(pool)) = (mem_ask, self.inner.cfg.memory_bytes) {
            if ask > pool {
                return AdmissionOutcome::Denied(AdmissionDenied::MemoryAskTooLarge {
                    requested: ask,
                    pool,
                });
            }
        }
        if let (Some(ask), Some(pool)) = (disk_ask, self.inner.cfg.disk_bytes) {
            if ask > pool {
                return AdmissionOutcome::Denied(AdmissionDenied::DiskAskTooLarge {
                    requested: ask,
                    pool,
                });
            }
        }
        if let Some(cap) = self.inner.cfg.max_queries {
            if ledger.active >= cap {
                return AdmissionOutcome::Queued { active: ledger.active, waiting_for: "queries" };
            }
        }
        if let (Some(ask), Some(pool)) = (mem_ask, self.inner.cfg.memory_bytes) {
            if ledger.mem_used + ask > pool {
                return AdmissionOutcome::Queued { active: ledger.active, waiting_for: "memory" };
            }
        }
        if let (Some(ask), Some(pool)) = (disk_ask, self.inner.cfg.disk_bytes) {
            if ledger.disk_used + ask > pool {
                return AdmissionOutcome::Queued { active: ledger.active, waiting_for: "disk" };
            }
        }
        // Commit the slices.
        if self.inner.cfg.memory_bytes.is_some() {
            ledger.mem_used += mem_ask.unwrap_or(0);
        }
        if self.inner.cfg.disk_bytes.is_some() {
            ledger.disk_used += disk_ask.unwrap_or(0);
        }
        ledger.active += 1;
        drop(ledger);
        AdmissionOutcome::Admitted(QueryGrant {
            controller: Arc::clone(&self.inner),
            mem_slice: if self.inner.cfg.memory_bytes.is_some() { mem_ask } else { None },
            disk_slice: if self.inner.cfg.disk_bytes.is_some() { disk_ask } else { None },
            budget: match mem_ask {
                Some(b) => MemoryBudget::limited(b),
                None => MemoryBudget::unlimited(),
            },
            disk: match disk_ask {
                Some(b) => DiskBudget::limited(b),
                None => DiskBudget::unlimited(),
            },
            cancel: match req.deadline {
                Some(d) => CancelToken::with_timeout(d),
                None => CancelToken::new(),
            },
        })
    }

    /// [`Self::try_admit`], but parks the caller while the outcome is
    /// [`AdmissionOutcome::Queued`], waking on grant releases. Waiting is
    /// bounded by `timeout` (`None` = wait forever); a timeout returns
    /// the last `Queued` outcome so the caller can report what it was
    /// waiting for.
    pub fn admit_blocking(
        &self,
        req: &AdmissionRequest,
        timeout: Option<Duration>,
    ) -> AdmissionOutcome {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let outcome = self.try_admit(req);
            let AdmissionOutcome::Queued { .. } = outcome else { return outcome };
            let guard = self.lock();
            let wait = match deadline {
                None => Duration::from_millis(50),
                Some(d) => match d.checked_duration_since(std::time::Instant::now()) {
                    Some(left) => left.min(Duration::from_millis(50)),
                    None => return outcome,
                },
            };
            // The 50 ms cap is a safety net against lost wakeups; the
            // condvar normally fires on every grant release.
            let _ = self
                .inner
                .released
                .wait_timeout(guard, wait)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Refuse all further admissions (in-flight grants keep running and
    /// release normally). Parked [`Self::admit_blocking`] callers resolve
    /// to [`AdmissionDenied::ShuttingDown`].
    pub fn shutdown(&self) {
        self.lock().shutting_down = true;
        self.inner.released.notify_all();
    }
}

impl fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ledger = self.lock();
        f.debug_struct("AdmissionController")
            .field("config", &self.inner.cfg)
            .field("active", &ledger.active)
            .field("mem_used", &ledger.mem_used)
            .field("disk_used", &ledger.disk_used)
            .finish()
    }
}

/// One admitted query's resource slices, released back to the controller
/// when dropped (RAII — every path, including contained panics and
/// cancelled queries, returns its slices).
pub struct QueryGrant {
    controller: Arc<ControllerInner>,
    mem_slice: Option<u64>,
    disk_slice: Option<u64>,
    budget: MemoryBudget,
    disk: DiskBudget,
    cancel: CancelToken,
}

impl QueryGrant {
    /// The query's memory budget slice (shared-clone semantics, like all
    /// [`MemoryBudget`]s).
    pub fn budget(&self) -> MemoryBudget {
        self.budget.clone()
    }

    /// The query's spill-disk budget slice.
    pub fn disk(&self) -> DiskBudget {
        self.disk.clone()
    }

    /// The query's cancellation token (cancel by id = cancel this).
    pub fn cancel(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Memory bytes this grant holds out of the global pool (`None` when
    /// the pool is unmetered).
    pub fn memory_bytes(&self) -> Option<u64> {
        self.mem_slice
    }

    /// Disk bytes this grant holds out of the global pool (`None` when
    /// the pool is unmetered).
    pub fn disk_bytes(&self) -> Option<u64> {
        self.disk_slice
    }
}

impl fmt::Debug for QueryGrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryGrant")
            .field("mem_slice", &self.mem_slice)
            .field("disk_slice", &self.disk_slice)
            .finish()
    }
}

impl Drop for QueryGrant {
    fn drop(&mut self) {
        let mut ledger = self.controller.ledger.lock().unwrap_or_else(PoisonError::into_inner);
        ledger.mem_used = ledger.mem_used.saturating_sub(self.mem_slice.unwrap_or(0));
        ledger.disk_used = ledger.disk_used.saturating_sub(self.disk_slice.unwrap_or(0));
        ledger.active = ledger.active.saturating_sub(1);
        drop(ledger);
        self.controller.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capped(mem: u64, disk: u64, queries: usize) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            memory_bytes: Some(mem),
            disk_bytes: Some(disk),
            max_queries: Some(queries),
        })
    }

    #[test]
    fn unmetered_controller_admits_everything_unlimited() {
        let c = AdmissionController::new(AdmissionConfig::default());
        let AdmissionOutcome::Admitted(g) = c.try_admit(&AdmissionRequest::default()) else {
            panic!("unmetered admission must succeed");
        };
        assert!(!g.budget().is_limited());
        assert!(!g.disk().is_limited());
        assert_eq!(g.memory_bytes(), None);
        assert_eq!(c.active(), 1);
        drop(g);
        assert_eq!(c.active(), 0);
    }

    #[test]
    fn default_slice_is_an_even_share_of_the_pool() {
        let c = capped(100, 400, 4);
        let AdmissionOutcome::Admitted(g) = c.try_admit(&AdmissionRequest::default()) else {
            panic!("admission must succeed");
        };
        assert_eq!(g.memory_bytes(), Some(25));
        assert_eq!(g.disk_bytes(), Some(100));
        assert_eq!(g.budget().limit(), Some(25));
        assert_eq!(g.disk().limit(), Some(100));
    }

    #[test]
    fn concurrency_cap_queues_and_releases() {
        let c = capped(1000, 1000, 2);
        let g1 = match c.try_admit(&AdmissionRequest::default()) {
            AdmissionOutcome::Admitted(g) => g,
            other => panic!("{other:?}"),
        };
        let _g2 = match c.try_admit(&AdmissionRequest::default()) {
            AdmissionOutcome::Admitted(g) => g,
            other => panic!("{other:?}"),
        };
        match c.try_admit(&AdmissionRequest::default()) {
            AdmissionOutcome::Queued { active, waiting_for } => {
                assert_eq!(active, 2);
                assert_eq!(waiting_for, "queries");
            }
            other => panic!("{other:?}"),
        }
        drop(g1);
        assert!(matches!(c.try_admit(&AdmissionRequest::default()), AdmissionOutcome::Admitted(_)));
    }

    #[test]
    fn impossible_asks_are_denied_not_queued() {
        let c = capped(100, 100, 8);
        let req = AdmissionRequest { memory_bytes: Some(101), ..Default::default() };
        match c.try_admit(&req) {
            AdmissionOutcome::Denied(AdmissionDenied::MemoryAskTooLarge { requested, pool }) => {
                assert_eq!((requested, pool), (101, 100));
            }
            other => panic!("{other:?}"),
        }
        let req = AdmissionRequest { disk_bytes: Some(7000), ..Default::default() };
        match c.try_admit(&req) {
            AdmissionOutcome::Denied(AdmissionDenied::DiskAskTooLarge { requested, pool }) => {
                assert_eq!((requested, pool), (7000, 100));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.active(), 0, "denials must not leak ledger state");
    }

    #[test]
    fn memory_exhaustion_queues_until_a_grant_releases() {
        let c = capped(100, 100, 8);
        let req = AdmissionRequest { memory_bytes: Some(60), ..Default::default() };
        let g1 = match c.try_admit(&req) {
            AdmissionOutcome::Admitted(g) => g,
            other => panic!("{other:?}"),
        };
        match c.try_admit(&req) {
            AdmissionOutcome::Queued { waiting_for, .. } => assert_eq!(waiting_for, "memory"),
            other => panic!("{other:?}"),
        }
        drop(g1);
        assert!(matches!(c.try_admit(&req), AdmissionOutcome::Admitted(_)));
    }

    #[test]
    fn admit_blocking_wakes_on_release() {
        let c = capped(100, 100, 1);
        let g = match c.try_admit(&AdmissionRequest::default()) {
            AdmissionOutcome::Admitted(g) => g,
            other => panic!("{other:?}"),
        };
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || {
            c2.admit_blocking(&AdmissionRequest::default(), Some(Duration::from_secs(10)))
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        match waiter.join().unwrap() {
            AdmissionOutcome::Admitted(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn admit_blocking_times_out_with_the_queued_outcome() {
        let c = capped(100, 100, 1);
        let _g = match c.try_admit(&AdmissionRequest::default()) {
            AdmissionOutcome::Admitted(g) => g,
            other => panic!("{other:?}"),
        };
        match c.admit_blocking(&AdmissionRequest::default(), Some(Duration::from_millis(30))) {
            AdmissionOutcome::Queued { waiting_for, .. } => assert_eq!(waiting_for, "queries"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn grants_release_on_panic_unwind() {
        let c = capped(100, 100, 1);
        let c2 = c.clone();
        let result = std::panic::catch_unwind(move || {
            let _g = match c2.try_admit(&AdmissionRequest::default()) {
                AdmissionOutcome::Admitted(g) => g,
                other => panic!("unexpected: {other:?}"),
            };
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(c.active(), 0);
        assert!(matches!(c.try_admit(&AdmissionRequest::default()), AdmissionOutcome::Admitted(_)));
    }

    #[test]
    fn shutdown_denies_new_admissions() {
        let c = capped(100, 100, 4);
        c.shutdown();
        assert!(matches!(
            c.try_admit(&AdmissionRequest::default()),
            AdmissionOutcome::Denied(AdmissionDenied::ShuttingDown)
        ));
    }

    #[test]
    fn deadline_request_yields_a_deadline_token() {
        let c = AdmissionController::new(AdmissionConfig::default());
        let req =
            AdmissionRequest { deadline: Some(Duration::from_millis(0)), ..Default::default() };
        let AdmissionOutcome::Admitted(g) = c.try_admit(&req) else { panic!() };
        assert!(g.cancel().is_enabled());
        assert!(g.cancel().cancelled().is_some(), "zero deadline trips immediately");
    }

    #[test]
    fn concurrent_admissions_never_oversubscribe() {
        let c = capped(1000, 1000, 4);
        let peak = Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    for _ in 0..200 {
                        if let AdmissionOutcome::Admitted(g) = c.try_admit(&AdmissionRequest {
                            memory_bytes: Some(250),
                            ..Default::default()
                        }) {
                            let active = c.active();
                            assert!(active <= 4, "active {active} exceeds the cap");
                            let mut p = peak.lock().unwrap();
                            *p = (*p).max(active);
                            drop(p);
                            drop(g);
                        }
                    }
                });
            }
        });
        assert_eq!(c.active(), 0, "all grants released");
    }
}
