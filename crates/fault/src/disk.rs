//! Shared atomic spill-disk accounting with RAII release.
//!
//! The disk mirror of [`crate::MemoryBudget`]: spill writes reserve their
//! file's bytes here *before* touching the filesystem, so a bounded spill
//! directory degrades exactly like a bounded heap — with a typed
//! [`AggError::DiskBudgetExceeded`] instead of a mid-write `ENOSPC`
//! panic — and the reservation rides the spilled run, releasing when the
//! scratch file is deleted.

use crate::error::AggError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct DiskInner {
    /// Hard limit in bytes.
    limit: u64,
    /// Bytes currently reserved.
    reserved: AtomicU64,
    /// Reservations denied over the budget's lifetime.
    denials: AtomicU64,
    /// Highest value `reserved` ever reached (monotonic).
    high_water: AtomicU64,
}

/// A shared spill-disk budget. Cloning shares the account; the unlimited
/// budget is a `None` and costs a null check per spill.
///
/// Accounting covers the exact on-disk size of each spill file (the
/// writer computes it up front), so `outstanding()` is the live spill
/// footprint in bytes. The balance invariant matches the memory budget:
/// whatever an operator invocation reserves is released by the time its
/// runs are dropped, on every path including errors.
#[derive(Clone, Default)]
pub struct DiskBudget {
    inner: Option<Arc<DiskInner>>,
}

impl DiskBudget {
    /// No limit; all accounting is skipped.
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A budget of `limit_bytes` of spill space shared by all clones.
    pub fn limited(limit_bytes: u64) -> Self {
        Self {
            inner: Some(Arc::new(DiskInner {
                limit: limit_bytes,
                reserved: AtomicU64::new(0),
                denials: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this budget enforces a limit.
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// The limit in bytes (`None` when unlimited).
    pub fn limit(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.limit)
    }

    /// Bytes currently reserved (0 when unlimited). Balanced back to its
    /// pre-invocation value once every spilled run is dropped; the chaos
    /// suite asserts it.
    pub fn outstanding(&self) -> u64 {
        // ORDERING: Acquire; site: balance; pairs-with: reserved.rmw —
        // a balance observed after an operator returns reflects every
        // reservation that operator made and dropped.
        self.inner.as_ref().map_or(0, |i| i.reserved.load(Ordering::Acquire))
    }

    /// Highest concurrently reserved byte count this budget ever saw
    /// (0 when unlimited). Monotonic: the peak on-disk spill footprint.
    pub fn high_water(&self) -> u64 {
        // ORDERING: Relaxed — a monotonic statistic read after the fact;
        // no other memory is published through it.
        self.inner.as_ref().map_or(0, |i| i.high_water.load(Ordering::Relaxed))
    }

    /// Reservations denied so far (0 when unlimited).
    pub fn denials(&self) -> u64 {
        // ORDERING: Relaxed — a monotonic statistics counter; no other
        // memory is published through it.
        self.inner.as_ref().map_or(0, |i| i.denials.load(Ordering::Relaxed))
    }

    /// Reserve `bytes` of spill space, failing with
    /// [`AggError::DiskBudgetExceeded`] if the limit would be crossed.
    /// The returned [`DiskReservation`] releases the bytes when dropped.
    pub fn try_reserve(&self, bytes: u64) -> Result<DiskReservation, AggError> {
        let Some(inner) = &self.inner else {
            return Ok(DiskReservation { budget: None, bytes: AtomicU64::new(bytes) });
        };
        // ORDERING: Relaxed — only a hint seeding the CAS loop; the
        // compare_exchange below revalidates against the real value.
        let mut current = inner.reserved.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_add(bytes);
            if new > inner.limit {
                // ORDERING: Relaxed — statistics counter (see `denials`).
                inner.denials.fetch_add(1, Ordering::Relaxed);
                return Err(AggError::DiskBudgetExceeded {
                    requested: bytes,
                    limit: inner.limit,
                    reserved: current,
                });
            }
            // ORDERING: AcqRel/Relaxed; site: rmw; pairs-with: reserved.balance —
            // success chains reserve/release RMWs into a single
            // modification order the Acquire readers observe; the failed
            // side only retries, the value is not acted on.
            match inner.reserved.compare_exchange_weak(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // ORDERING: Relaxed — the high-water max-CAS is a
                    // monotonic statistic; no other memory rides on it and
                    // it is read only after the fact.
                    let mut hw = inner.high_water.load(Ordering::Relaxed);
                    while new > hw {
                        match inner.high_water.compare_exchange_weak(
                            hw,
                            new,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(observed) => hw = observed,
                        }
                    }
                    return Ok(DiskReservation {
                        budget: Some(Arc::clone(inner)),
                        bytes: AtomicU64::new(bytes),
                    });
                }
                Err(observed) => current = observed,
            }
        }
    }
}

impl std::fmt::Debug for DiskBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "DiskBudget::unlimited"),
            Some(i) => f
                .debug_struct("DiskBudget")
                .field("limit", &i.limit)
                // ORDERING: Relaxed — debug snapshot, no synchronization.
                .field("reserved", &i.reserved.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

/// A granted spill-space reservation. Releases its bytes on drop —
/// attach it to the spilled run whose file it covers so deleting the
/// scratch file and returning the disk space are the same event.
///
/// The covered byte count is interiorly mutable (only downward, via
/// [`shrink_to`](Self::shrink_to)) so an async spill writer can reserve a
/// compressed file's *upper bound* synchronously — keeping
/// [`AggError::DiskBudgetExceeded`] a submit-time error — and return the
/// difference once the actual encoded size is known.
#[derive(Debug, Default)]
pub struct DiskReservation {
    budget: Option<Arc<DiskInner>>,
    bytes: AtomicU64,
}

impl DiskReservation {
    /// A zero-byte reservation against no budget.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Bytes this reservation currently covers.
    pub fn bytes(&self) -> u64 {
        // ORDERING: Acquire; site: count; pairs-with: bytes.shrink —
        // a reader that learned of the shrink (e.g. through a spill
        // ticket) sees the reduced count.
        self.bytes.load(Ordering::Acquire)
    }

    /// Shrink this reservation to `new_bytes`, returning the difference
    /// to the budget immediately (the drop will release only the
    /// remainder). Growing is not allowed — that would bypass the
    /// budget's limit check — so a larger `new_bytes` is a no-op.
    pub fn shrink_to(&self, new_bytes: u64) {
        // ORDERING: AcqRel; site: shrink; pairs-with: bytes.count —
        // the min-RMW both takes the previous count exactly once (so
        // racing shrinkers release each byte at most once) and publishes
        // the new one to `bytes()` readers.
        let old = self.bytes.fetch_min(new_bytes, Ordering::AcqRel);
        let released = old.saturating_sub(new_bytes);
        if released > 0 {
            if let Some(inner) = &self.budget {
                // ORDERING: AcqRel; site: rmw; pairs-with: reserved.balance —
                // the release side of the reserve CAS (see `Drop`); an
                // Acquire balance read afterwards sees the bytes returned.
                inner.reserved.fetch_sub(released, Ordering::AcqRel);
            }
        }
    }
}

impl Drop for DiskReservation {
    fn drop(&mut self) {
        if let Some(inner) = &self.budget {
            // ORDERING: AcqRel; site: rmw; pairs-with: reserved.balance —
            // the release side of the reserve CAS; an Acquire read of the
            // balance afterwards sees the bytes returned (outstanding()
            // == 0 after drops is asserted by the chaos suite). `get_mut`
            // on the count needs no ordering: drop has exclusive access.
            inner.reserved.fetch_sub(*self.bytes.get_mut(), Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_grants() {
        let b = DiskBudget::unlimited();
        assert!(!b.is_limited());
        let r = b.try_reserve(u64::MAX).unwrap();
        assert_eq!(r.bytes(), u64::MAX);
        assert_eq!(b.outstanding(), 0);
        assert_eq!(b.high_water(), 0);
    }

    #[test]
    fn limited_budget_grants_denies_and_releases() {
        let b = DiskBudget::limited(100);
        let r1 = b.try_reserve(60).unwrap();
        assert_eq!(b.outstanding(), 60);
        let denied = b.try_reserve(50);
        assert_eq!(
            denied.unwrap_err(),
            AggError::DiskBudgetExceeded { requested: 50, limit: 100, reserved: 60 }
        );
        assert_eq!(b.denials(), 1);
        drop(r1);
        assert_eq!(b.outstanding(), 0);
        assert_eq!(b.high_water(), 60);
    }

    #[test]
    fn shrinking_returns_the_difference_and_never_grows() {
        let b = DiskBudget::limited(100);
        let r = b.try_reserve(80).unwrap();
        r.shrink_to(30);
        assert_eq!(r.bytes(), 30);
        assert_eq!(b.outstanding(), 30, "the difference is returned immediately");
        // Growing is refused: the budget's limit check cannot be bypassed.
        r.shrink_to(90);
        assert_eq!(r.bytes(), 30);
        assert_eq!(b.outstanding(), 30);
        r.shrink_to(0);
        assert_eq!(b.outstanding(), 0);
        drop(r);
        assert_eq!(b.outstanding(), 0, "drop releases only the remainder");
        assert_eq!(b.high_water(), 80, "the peak saw the nominal reservation");
        // Unlimited reservations shrink without accounting.
        let r = DiskBudget::unlimited().try_reserve(64).unwrap();
        r.shrink_to(8);
        assert_eq!(r.bytes(), 8);
    }

    #[test]
    fn clones_share_the_account() {
        let b = DiskBudget::limited(10);
        let b2 = b.clone();
        let _r = b.try_reserve(8).unwrap();
        assert_eq!(b2.outstanding(), 8);
        assert!(b2.try_reserve(4).is_err());
    }

    #[test]
    fn release_happens_on_unwind() {
        let b = DiskBudget::limited(100);
        let b2 = b.clone();
        let result = std::panic::catch_unwind(move || {
            let _r = b2.try_reserve(70).unwrap();
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn concurrent_reservations_stay_within_limit() {
        let b = DiskBudget::limited(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(r) = b.try_reserve(7) {
                            assert!(b.outstanding() <= 1000);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(b.outstanding(), 0);
        assert!(b.high_water() <= 1000);
    }
}
