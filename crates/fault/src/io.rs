//! I/O error taxonomy and deterministic bounded retry for the spill path.
//!
//! Spill files are scratch the operator wrote itself, so the sensible
//! reaction to an I/O error depends only on *what kind* of error it is:
//! a transient hiccup (`EINTR`, `EAGAIN`, a device-level `EIO` blip) is
//! worth retrying from scratch — spill writes are idempotent whole-file
//! operations — while a permanent condition (`ENOSPC`, a missing file,
//! detected corruption) never heals by itself and must surface
//! immediately as a typed error.
//!
//! The retry policy is deliberately clockless: the decision to retry
//! depends only on the attempt counter, never on wall time, so fault
//! sweeps and Miri runs replay bit-identically. The backoff between
//! attempts is a bounded `yield_now` loop — enough to let a competing
//! writer drain, with no timer in the decision path.

use std::io;

/// Classification of an `io::Error` on the spill path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoClass {
    /// Worth retrying: the same operation may succeed on the next
    /// attempt (`Interrupted`, `WouldBlock`, `TimedOut`, raw `EINTR`/
    /// `EAGAIN`/`EIO`).
    Transient,
    /// Retrying cannot help: full disk, missing file, invalid data,
    /// permission trouble, or detected corruption.
    Permanent,
}

/// Classify an I/O error into [`IoClass::Transient`] vs
/// [`IoClass::Permanent`].
///
/// The transient set is deliberately narrow: only conditions that are
/// plausibly momentary. `ENOSPC` in particular is permanent — retrying a
/// spill against a full disk busy-loops without freeing a byte; the
/// caller must degrade (disk budget error) instead.
pub fn classify_io(e: &io::Error) -> IoClass {
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            IoClass::Transient
        }
        // EINTR(4) / EIO(5) / EAGAIN(11): raw codes std maps to
        // `Uncategorized` on some platforms; classify them by number so
        // an injected or kernel-raised EIO retries either way.
        _ => match e.raw_os_error() {
            Some(4 | 5 | 11) => IoClass::Transient,
            _ => IoClass::Permanent,
        },
    }
}

/// Shorthand for `classify_io(e) == IoClass::Transient`.
pub fn is_transient_io(e: &io::Error) -> bool {
    classify_io(e) == IoClass::Transient
}

/// Bounded, deterministic retry for idempotent spill I/O.
///
/// `max_retries` counts *re*-attempts: a policy of 3 permits at most 4
/// total attempts. The backoff is attempt-counter based (capped
/// exponential `yield_now` loop) so no wall-clock reading ever decides
/// whether or when to retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first attempt.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3 }
    }
}

impl RetryPolicy {
    /// No retries: every error is final.
    pub fn none() -> Self {
        Self { max_retries: 0 }
    }

    /// Whether a failed attempt number `attempt` (0-based) of an
    /// operation that hit `e` should be retried.
    pub fn should_retry(&self, attempt: u32, e: &io::Error) -> bool {
        attempt < self.max_retries && is_transient_io(e)
    }

    /// Deterministic capped backoff before retry number `attempt + 1`:
    /// yields the scheduler `2^attempt` times (capped at 8). Not a timer
    /// — behaviour does not depend on wall time.
    pub fn backoff(&self, attempt: u32) {
        for _ in 0..(1u32 << attempt.min(3)) {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_as_documented() {
        for kind in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut]
        {
            assert_eq!(classify_io(&io::Error::new(kind, "x")), IoClass::Transient, "{kind:?}");
        }
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::InvalidData,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::Unsupported,
        ] {
            assert_eq!(classify_io(&io::Error::new(kind, "x")), IoClass::Permanent, "{kind:?}");
        }
    }

    #[test]
    fn raw_codes_classify_as_documented() {
        assert!(is_transient_io(&io::Error::from_raw_os_error(5)), "EIO is transient");
        assert!(is_transient_io(&io::Error::from_raw_os_error(4)), "EINTR is transient");
        assert!(is_transient_io(&io::Error::from_raw_os_error(11)), "EAGAIN is transient");
        assert!(!is_transient_io(&io::Error::from_raw_os_error(28)), "ENOSPC is permanent");
        assert!(!is_transient_io(&io::Error::from_raw_os_error(2)), "ENOENT is permanent");
    }

    #[test]
    fn retry_policy_bounds_attempts() {
        let p = RetryPolicy::default();
        let transient = io::Error::new(io::ErrorKind::Interrupted, "blip");
        assert!(p.should_retry(0, &transient));
        assert!(p.should_retry(2, &transient));
        assert!(!p.should_retry(3, &transient), "3 retries max by default");
        let permanent = io::Error::from_raw_os_error(28);
        assert!(!p.should_retry(0, &permanent), "permanent errors never retry");
        assert!(!RetryPolicy::none().should_retry(0, &transient));
        // Backoff terminates regardless of attempt number.
        p.backoff(0);
        p.backoff(63);
    }
}
