//! Deterministic fault injection.
//!
//! Error paths are exactly the code that never runs in a healthy system,
//! so they rot unless something exercises them on purpose. A [`FaultPlan`]
//! names an injection point by ordinal — fail the Nth memory reservation,
//! panic in the Nth task, cancel after K input rows — and the driver
//! consults the shared [`FaultInjector`] counters at those points. Sweeping
//! N over a fixed workload visits every reservation and task of the run,
//! which is how `crates/core/tests/faults.rs` proves that each failure site
//! surfaces a clean `Err` and leaks nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to inject, by ordinal. All counters are 1-based; `None` disables
/// that injection point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the Nth memory reservation of the run with a budget error.
    pub fail_alloc: Option<u64>,
    /// Panic at the start of the Nth operator task (morsel or bucket).
    pub panic_in_task: Option<u64>,
    /// Trip the cancellation token once K input rows have been processed.
    pub cancel_after_rows: Option<u64>,
    /// Fail the Nth spill-file write with an I/O error *above* the store
    /// (at the driver's spill gate, before any file is created). The
    /// store-level faults below exercise the paths underneath.
    pub fail_spill: Option<u64>,
    /// Inject one storage-level I/O fault inside the spill file store:
    /// the Nth write or read operation (counted by kind) misbehaves as
    /// [`SpillFault::kind`] says. `None` disables the point.
    pub spill_io: Option<SpillFault>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        Self::default()
    }
}

/// One storage-level spill I/O fault: which operation ordinal fires and
/// how it misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillFault {
    /// 1-based ordinal among operations of the kind's direction: write
    /// kinds count spill-file writes, read kinds count restores.
    pub nth: u64,
    /// How the selected operation misbehaves.
    pub kind: SpillFaultKind,
}

/// The flavor of an injected storage-level spill fault.
///
/// Transient flavors (`WriteEio`, `WriteShort`, `ReadEio`) must be healed
/// by the store's bounded retry — the query completes bit-identically.
/// Permanent flavors (`WriteEnospc`, `ReadBitFlip`, `ReadTruncate`) must
/// surface as a typed error, never as wrong rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillFaultKind {
    /// The Nth spill write fails with `EIO` after a partial write
    /// (transient: the retry rewrites the file from scratch).
    WriteEio,
    /// The Nth spill write is torn: only a prefix reaches the file before
    /// an `Interrupted` error (transient: classic short-write semantics).
    WriteShort,
    /// The Nth spill write hits `ENOSPC` after a partial write
    /// (permanent: the partial file is unlinked and the error surfaces).
    WriteEnospc,
    /// The Nth restore fails with `EIO` before reading (transient).
    ReadEio,
    /// The Nth restore sees one payload bit flipped after the bytes leave
    /// the file (permanent: the extent CRC must catch it).
    ReadBitFlip,
    /// The file is truncated to half its length before the Nth restore
    /// (permanent: footer/extent verification must catch it).
    ReadTruncate,
}

impl SpillFaultKind {
    /// Whether this fault fires on the write path.
    pub fn is_write(self) -> bool {
        matches!(self, Self::WriteEio | Self::WriteShort | Self::WriteEnospc)
    }

    /// Whether this fault fires on the read (restore) path.
    pub fn is_read(self) -> bool {
        !self.is_write()
    }

    /// Whether the store's bounded retry is expected to heal this fault.
    pub fn is_transient(self) -> bool {
        matches!(self, Self::WriteEio | Self::WriteShort | Self::ReadEio)
    }
}

struct InjectState {
    plan: FaultPlan,
    allocs: AtomicU64,
    tasks: AtomicU64,
    rows: AtomicU64,
    spills: AtomicU64,
    spill_writes: AtomicU64,
    spill_reads: AtomicU64,
    spill_io_fired: AtomicU64,
}

/// Shared counters applying a [`FaultPlan`]. Cloning shares the counters,
/// so the ordinals are global across all workers of a run. The disabled
/// injector is a `None`: every probe is a single null check.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectState>>,
}

impl FaultInjector {
    /// No injection.
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// Inject according to `plan` (a plan with no points set behaves like
    /// [`FaultInjector::none`]).
    pub fn new(plan: FaultPlan) -> Self {
        if plan == FaultPlan::none() {
            return Self::none();
        }
        Self {
            inner: Some(Arc::new(InjectState {
                plan,
                allocs: AtomicU64::new(0),
                tasks: AtomicU64::new(0),
                rows: AtomicU64::new(0),
                spills: AtomicU64::new(0),
                spill_writes: AtomicU64::new(0),
                spill_reads: AtomicU64::new(0),
                spill_io_fired: AtomicU64::new(0),
            })),
        }
    }

    /// Count one memory reservation; `true` means this is the one the plan
    /// says must fail.
    pub fn should_fail_alloc(&self) -> bool {
        let Some(s) = &self.inner else { return false };
        let Some(n) = s.plan.fail_alloc else { return false };
        // ORDERING: Relaxed — the RMW's atomicity alone makes exactly one
        // caller see the trigger count; no other memory rides on it.
        s.allocs.fetch_add(1, Ordering::Relaxed) + 1 == n
    }

    /// Count one task start; `true` means this task must panic.
    pub fn should_panic_in_task(&self) -> bool {
        let Some(s) = &self.inner else { return false };
        let Some(n) = s.plan.panic_in_task else { return false };
        // ORDERING: Relaxed — same single-winner argument as `allocs`.
        s.tasks.fetch_add(1, Ordering::Relaxed) + 1 == n
    }

    /// Count one spill-file write; `true` means this write must fail with
    /// an injected I/O error.
    pub fn should_fail_spill(&self) -> bool {
        let Some(s) = &self.inner else { return false };
        let Some(n) = s.plan.fail_spill else { return false };
        // ORDERING: Relaxed — same single-winner argument as `allocs`.
        s.spills.fetch_add(1, Ordering::Relaxed) + 1 == n
    }

    /// Count `rows` processed rows; `true` exactly once, when the total
    /// first reaches the plan's threshold.
    pub fn should_cancel_after(&self, rows: u64) -> bool {
        let Some(s) = &self.inner else { return false };
        let Some(k) = s.plan.cancel_after_rows else { return false };
        // ORDERING: Relaxed — atomicity makes exactly one add cross the
        // threshold; which concrete rows counted does not matter.
        let before = s.rows.fetch_add(rows, Ordering::Relaxed);
        before < k && before + rows >= k
    }

    /// Whether the plan wants to cancel at some point (the driver then
    /// makes sure a cancellable token exists).
    pub fn plans_cancellation(&self) -> bool {
        self.inner.as_ref().is_some_and(|s| s.plan.cancel_after_rows.is_some())
    }

    /// Count one spill-file write operation; `Some(kind)` means this is
    /// the write the plan says must misbehave. Plans whose fault is a
    /// read kind do not consume write ordinals (and vice versa), so a
    /// sweep over `nth` visits exactly the operations of one direction.
    pub fn spill_write_fault(&self) -> Option<SpillFaultKind> {
        let s = self.inner.as_ref()?;
        let f = s.plan.spill_io.filter(|f| f.kind.is_write())?;
        // ORDERING: Relaxed — the RMW's atomicity alone makes exactly one
        // caller see the trigger count; no other memory rides on it.
        if s.spill_writes.fetch_add(1, Ordering::Relaxed) + 1 == f.nth {
            // ORDERING: Relaxed — statistics counter read after the run.
            s.spill_io_fired.fetch_add(1, Ordering::Relaxed);
            Some(f.kind)
        } else {
            None
        }
    }

    /// Count one spill-file read (restore) operation; `Some(kind)` means
    /// this restore must misbehave. See [`Self::spill_write_fault`].
    pub fn spill_read_fault(&self) -> Option<SpillFaultKind> {
        let s = self.inner.as_ref()?;
        let f = s.plan.spill_io.filter(|f| f.kind.is_read())?;
        // ORDERING: Relaxed — same single-winner argument as the writes.
        if s.spill_reads.fetch_add(1, Ordering::Relaxed) + 1 == f.nth {
            // ORDERING: Relaxed — statistics counter read after the run.
            s.spill_io_fired.fetch_add(1, Ordering::Relaxed);
            Some(f.kind)
        } else {
            None
        }
    }

    /// How many storage-level spill faults actually fired. Ordinal sweeps
    /// use this to detect that `nth` ran past the last injectable
    /// operation of the workload.
    pub fn spill_io_fired(&self) -> u64 {
        // ORDERING: Relaxed — statistics counter read after the run.
        self.inner.as_ref().map_or(0, |s| s.spill_io_fired.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FaultInjector::none"),
            Some(s) => f.debug_struct("FaultInjector").field("plan", &s.plan).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let f = FaultInjector::none();
        assert!(!f.should_fail_alloc());
        assert!(!f.should_panic_in_task());
        assert!(!f.should_cancel_after(1 << 40));
        assert!(!f.plans_cancellation());
        let noop = FaultInjector::new(FaultPlan::none());
        assert!(!noop.should_fail_alloc());
    }

    #[test]
    fn nth_alloc_fails_exactly_once() {
        let f = FaultInjector::new(FaultPlan { fail_alloc: Some(3), ..FaultPlan::none() });
        let fired: Vec<bool> = (0..5).map(|_| f.should_fail_alloc()).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
    }

    #[test]
    fn nth_task_panics_exactly_once() {
        let f = FaultInjector::new(FaultPlan { panic_in_task: Some(1), ..FaultPlan::none() });
        assert!(f.should_panic_in_task());
        assert!(!f.should_panic_in_task());
    }

    #[test]
    fn row_threshold_fires_once_on_crossing() {
        let f = FaultInjector::new(FaultPlan { cancel_after_rows: Some(100), ..FaultPlan::none() });
        assert!(f.plans_cancellation());
        assert!(!f.should_cancel_after(60));
        assert!(f.should_cancel_after(60));
        assert!(!f.should_cancel_after(60));
    }

    #[test]
    fn nth_spill_fails_exactly_once() {
        let f = FaultInjector::new(FaultPlan { fail_spill: Some(2), ..FaultPlan::none() });
        let fired: Vec<bool> = (0..4).map(|_| f.should_fail_spill()).collect();
        assert_eq!(fired, vec![false, true, false, false]);
        assert!(!FaultInjector::none().should_fail_spill());
    }

    #[test]
    fn spill_io_write_faults_fire_on_the_nth_write_only() {
        let f = FaultInjector::new(FaultPlan {
            spill_io: Some(SpillFault { nth: 2, kind: SpillFaultKind::WriteEio }),
            ..FaultPlan::none()
        });
        assert_eq!(f.spill_write_fault(), None);
        assert_eq!(f.spill_write_fault(), Some(SpillFaultKind::WriteEio));
        assert_eq!(f.spill_write_fault(), None);
        // A write-kind plan never consumes read ordinals.
        assert_eq!(f.spill_read_fault(), None);
        assert_eq!(f.spill_io_fired(), 1);
    }

    #[test]
    fn spill_io_read_faults_do_not_consume_write_ordinals() {
        let f = FaultInjector::new(FaultPlan {
            spill_io: Some(SpillFault { nth: 1, kind: SpillFaultKind::ReadBitFlip }),
            ..FaultPlan::none()
        });
        assert_eq!(f.spill_write_fault(), None);
        assert_eq!(f.spill_read_fault(), Some(SpillFaultKind::ReadBitFlip));
        assert_eq!(f.spill_read_fault(), None);
        assert_eq!(f.spill_io_fired(), 1);
        assert_eq!(FaultInjector::none().spill_write_fault(), None);
        assert_eq!(FaultInjector::none().spill_io_fired(), 0);
    }

    #[test]
    fn spill_fault_kinds_classify() {
        use SpillFaultKind::*;
        for k in [WriteEio, WriteShort, WriteEnospc] {
            assert!(k.is_write() && !k.is_read(), "{k:?}");
        }
        for k in [ReadEio, ReadBitFlip, ReadTruncate] {
            assert!(k.is_read() && !k.is_write(), "{k:?}");
        }
        for k in [WriteEio, WriteShort, ReadEio] {
            assert!(k.is_transient(), "{k:?}");
        }
        for k in [WriteEnospc, ReadBitFlip, ReadTruncate] {
            assert!(!k.is_transient(), "{k:?}");
        }
    }

    #[test]
    fn clones_share_counters() {
        let f = FaultInjector::new(FaultPlan { fail_alloc: Some(2), ..FaultPlan::none() });
        let g = f.clone();
        assert!(!f.should_fail_alloc());
        assert!(g.should_fail_alloc());
    }
}
