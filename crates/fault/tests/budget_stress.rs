//! Concurrency stress for [`MemoryBudget`]: many threads reserving,
//! splitting, merging, and releasing concurrently, with the exact balance
//! checked at the end. Runs under plain `cargo test` and in the
//! ThreadSanitizer CI job — the CAS loop and the Drop-side release are
//! the only lock-free accounting in the engine.

use hsa_fault::MemoryBudget;
use std::sync::atomic::{AtomicU64, Ordering};

const THREADS: u64 = 8;
const OPS: u64 = 5_000;
const LIMIT: u64 = 1 << 20;

#[test]
fn concurrent_reserve_release_balances_to_zero() {
    let budget = MemoryBudget::limited(LIMIT);
    let granted = AtomicU64::new(0);
    let denied = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (budget, granted, denied) = (&budget, &granted, &denied);
            s.spawn(move || {
                // Deterministic per-thread xorshift so runs are repeatable.
                let mut rng = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..OPS {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let bytes = rng % (LIMIT / 4);
                    match budget.try_reserve(bytes) {
                        Ok(mut r) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            // The grant is live: the sum of all live grants
                            // never exceeds the limit, so neither does the
                            // outstanding counter.
                            assert!(budget.outstanding() <= LIMIT);
                            // Exercise the split/merge paths too — they
                            // must conserve bytes exactly.
                            let split = r.take(bytes / 2);
                            r.merge(split);
                            drop(r);
                        }
                        Err(_) => {
                            denied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    // Final balance: every grant was dropped, every byte came back.
    assert_eq!(budget.outstanding(), 0);
    assert_eq!(granted.load(Ordering::Relaxed) + denied.load(Ordering::Relaxed), THREADS * OPS);
    assert_eq!(budget.denials(), denied.load(Ordering::Relaxed));
}

#[test]
fn contended_small_reservations_never_oversubscribe() {
    // Reservations sized so ~4 fit: heavy CAS contention on one word.
    let budget = MemoryBudget::limited(4096);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let budget = &budget;
            s.spawn(move || {
                for _ in 0..OPS {
                    if let Ok(r) = budget.try_reserve(1024) {
                        assert!(budget.outstanding() <= 4096);
                        drop(r);
                    }
                }
            });
        }
    });
    assert_eq!(budget.outstanding(), 0);
}

#[test]
fn unlimited_budget_is_uncontended_and_balanced() {
    let budget = MemoryBudget::unlimited();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let budget = &budget;
            s.spawn(move || {
                for _ in 0..OPS {
                    let r = budget.try_reserve(u64::MAX / 2).expect("unlimited never denies");
                    drop(r);
                }
            });
        }
    });
    assert_eq!(budget.outstanding(), 0);
    assert_eq!(budget.denials(), 0);
}
