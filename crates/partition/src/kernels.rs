//! The partitioning kernel variants of the Figure 3 ablation.

use crate::swc::SwcBuffers;
use crate::{empty_parts, PartitionMetrics, Parts};
use hsa_columnar::ChunkedVec;
use hsa_hash::{digit, Hasher64, FANOUT};

/// Unroll factor of the out-of-order variant: "manually unrolling the main
/// loop into blocks of 16 elements, which are first all hashed and then
/// all put into their partition buffers" (§4.2).
const UNROLL: usize = 16;

/// Naive partitioning: one pass, direct append to the two-level outputs.
///
/// With [`hsa_hash::Identity`] this is Figure 3's `key` bar, with
/// [`hsa_hash::Murmur2`] its `hash` bar. Throughput is limited by the TLB
/// misses and read-before-write of scattering into 256 destinations.
pub fn partition_naive<H: Hasher64>(
    keys: impl Iterator<Item = u64>,
    hasher: H,
    level: u32,
) -> Parts {
    let mut parts = empty_parts();
    for k in keys {
        parts[digit(hasher.hash_u64(k), level)].push(k);
    }
    parts
}

/// Software write-combining, element-at-a-time hashing (Figure 3 `swc`).
pub fn partition_swc<H: Hasher64>(keys: impl Iterator<Item = u64>, hasher: H, level: u32) -> Parts {
    partition_swc_with_mode(keys, hasher, level, crate::FlushMode::auto())
}

/// [`partition_swc`] with an explicit flush mode (ablation hook).
pub fn partition_swc_with_mode<H: Hasher64>(
    keys: impl Iterator<Item = u64>,
    hasher: H,
    level: u32,
    mode: crate::FlushMode,
) -> Parts {
    let mut parts = empty_parts();
    let mut bufs = SwcBuffers::with_mode(mode);
    for k in keys {
        let d = digit(hasher.hash_u64(k), level);
        bufs.push(d, k, &mut parts[d]);
    }
    bufs.drain(&mut parts);
    parts
}

/// SWC plus 16-way unrolled hash computation (Figure 3 `oo`): hashing a
/// block of keys first lets the CPU overlap the multiply chains of the
/// hash function with the buffer stores of the previous elements.
pub fn partition_unrolled<H: Hasher64>(keys: &[u64], hasher: H, level: u32) -> Parts {
    partition_unrolled_with_mode(keys, hasher, level, crate::FlushMode::auto())
}

/// [`partition_unrolled`] with an explicit flush mode (ablation hook).
pub fn partition_unrolled_with_mode<H: Hasher64>(
    keys: &[u64],
    hasher: H,
    level: u32,
    mode: crate::FlushMode,
) -> Parts {
    let mut parts = empty_parts();
    let mut bufs = SwcBuffers::with_mode(mode);
    partition_unrolled_into(keys, hasher, level, &mut bufs, &mut parts, |_| {});
    bufs.drain(&mut parts);
    parts
}

/// The production kernel core: unrolled SWC partitioning with an optional
/// per-row sink observing the digit (used to build the mapping vector of
/// the column-wise processing model without a second hash pass).
#[inline]
pub(crate) fn partition_unrolled_into<H: Hasher64>(
    keys: &[u64],
    hasher: H,
    level: u32,
    bufs: &mut SwcBuffers,
    parts: &mut [ChunkedVec<u64>],
    mut observe_digit: impl FnMut(u8),
) {
    debug_assert_eq!(parts.len(), FANOUT);
    let mut hashes = [0u64; UNROLL];
    let mut blocks = keys.chunks_exact(UNROLL);
    for block in &mut blocks {
        // Phase 1: hash the whole block (independent instruction streams).
        for (h, &k) in hashes.iter_mut().zip(block) {
            *h = hasher.hash_u64(k);
        }
        // Phase 2: route the block through the write-combining buffers.
        for (&h, &k) in hashes.iter().zip(block) {
            let d = digit(h, level);
            observe_digit(d as u8);
            bufs.push(d, k, &mut parts[d]);
        }
    }
    for &k in blocks.remainder() {
        let d = digit(hasher.hash_u64(k), level);
        observe_digit(d as u8);
        bufs.push(d, k, &mut parts[d]);
    }
}

/// Production entry point: partition a run's key column (given as chunk
/// slices) and return the 256 partitions. When `mapping_out` is provided it
/// receives one radix digit per input row, in input order.
pub fn partition_keys<'a, H: Hasher64>(
    key_chunks: impl Iterator<Item = &'a [u64]>,
    hasher: H,
    level: u32,
) -> Parts {
    partition_keys_observed(key_chunks, hasher, level, &mut PartitionMetrics::default())
}

/// [`partition_keys`] that also accumulates the pass's write-combining
/// flush traffic into `metrics`.
pub fn partition_keys_observed<'a, H: Hasher64>(
    key_chunks: impl Iterator<Item = &'a [u64]>,
    hasher: H,
    level: u32,
    metrics: &mut PartitionMetrics,
) -> Parts {
    let mut parts = empty_parts();
    let mut bufs = SwcBuffers::new();
    for chunk in key_chunks {
        partition_unrolled_into(chunk, hasher, level, &mut bufs, &mut parts, |_| {});
    }
    bufs.drain(&mut parts);
    bufs.add_metrics_to(metrics);
    parts
}

/// Like [`partition_keys`] but also emits the digit mapping vector needed
/// to scatter the aggregate columns afterwards (§3.3).
pub fn partition_keys_mapped<'a, H: Hasher64>(
    key_chunks: impl Iterator<Item = &'a [u64]>,
    hasher: H,
    level: u32,
    mapping_out: &mut Vec<u8>,
) -> Parts {
    partition_keys_mapped_observed(
        key_chunks,
        hasher,
        level,
        mapping_out,
        &mut PartitionMetrics::default(),
    )
}

/// [`partition_keys_mapped`] that also accumulates the pass's
/// write-combining flush traffic into `metrics`.
pub fn partition_keys_mapped_observed<'a, H: Hasher64>(
    key_chunks: impl Iterator<Item = &'a [u64]>,
    hasher: H,
    level: u32,
    mapping_out: &mut Vec<u8>,
    metrics: &mut PartitionMetrics,
) -> Parts {
    let mut parts = empty_parts();
    let mut bufs = SwcBuffers::new();
    for chunk in key_chunks {
        partition_unrolled_into(chunk, hasher, level, &mut bufs, &mut parts, |d| {
            mapping_out.push(d)
        });
    }
    bufs.drain(&mut parts);
    bufs.add_metrics_to(metrics);
    parts
}

/// Over-allocation ablation (Figure 3): each partition is one flat `Vec`
/// pre-reserved to hold the entire input, mimicking Wassenberg's
/// virtual-memory trick. Fastest output shape, impossible memory policy —
/// kept to measure what the two-level structure costs.
pub fn partition_overalloc<H: Hasher64>(keys: &[u64], hasher: H, level: u32) -> Vec<Vec<u64>> {
    let mut parts: Vec<Vec<u64>> = (0..FANOUT).map(|_| Vec::with_capacity(keys.len())).collect();
    let mut bufs = SwcBuffers::new();
    let mut hashes = [0u64; UNROLL];
    let mut blocks = keys.chunks_exact(UNROLL);
    for block in &mut blocks {
        for (h, &k) in hashes.iter_mut().zip(block) {
            *h = hasher.hash_u64(k);
        }
        for (&h, &k) in hashes.iter().zip(block) {
            let d = digit(h, level);
            bufs.push_flat(d, k, &mut parts[d]);
        }
    }
    for &k in blocks.remainder() {
        let d = digit(hasher.hash_u64(k), level);
        bufs.push_flat(d, k, &mut parts[d]);
    }
    bufs.drain_flat(&mut parts);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pseudo_random_keys, reference_parts};
    use hsa_hash::{Identity, Murmur2};

    fn flat(parts: &Parts) -> Vec<Vec<u64>> {
        parts.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn all_variants_agree_with_reference() {
        let keys = pseudo_random_keys(10_000, 7);
        let h = Murmur2::default();
        let expect = reference_parts(&keys, h, 0);
        assert_eq!(flat(&partition_naive(keys.iter().copied(), h, 0)), expect, "naive");
        assert_eq!(flat(&partition_swc(keys.iter().copied(), h, 0)), expect, "swc");
        assert_eq!(flat(&partition_unrolled(&keys, h, 0)), expect, "unrolled");
        assert_eq!(flat(&partition_keys([keys.as_slice()].into_iter(), h, 0)), expect, "keys");
        assert_eq!(partition_overalloc(&keys, h, 0), expect, "overalloc");
    }

    #[test]
    fn identity_hasher_partitions_by_key_bits() {
        // Keys with known top bytes land in the matching partition.
        let keys: Vec<u64> = (0..FANOUT as u64).map(|d| d << 56 | 42).collect();
        let parts = partition_naive(keys.iter().copied(), Identity, 0);
        for (d, p) in parts.iter().enumerate() {
            assert_eq!(p.to_vec(), vec![(d as u64) << 56 | 42]);
        }
    }

    #[test]
    fn partitioning_is_a_permutation() {
        let keys = pseudo_random_keys(50_000, 3);
        let parts = partition_unrolled(&keys, Murmur2::default(), 0);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, keys.len());
        let mut collected: Vec<u64> = parts.iter().flat_map(|p| p.iter()).collect();
        collected.sort_unstable();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(collected, sorted);
    }

    #[test]
    fn partitioning_is_stable_within_partition() {
        // Rows of one partition keep their input order (needed so the
        // digit mapping aligns with the aggregate-column scatter).
        let keys: Vec<u64> = (0..10_000u64).collect();
        let h = Murmur2::default();
        let parts = partition_unrolled(&keys, h, 0);
        let expect = reference_parts(&keys, h, 0); // reference is stable
        assert_eq!(flat(&parts), expect);
    }

    #[test]
    fn mapped_variant_emits_correct_digits() {
        let keys = pseudo_random_keys(5_000, 11);
        let h = Murmur2::default();
        let mut mapping = Vec::new();
        let parts = partition_keys_mapped([keys.as_slice()].into_iter(), h, 0, &mut mapping);
        assert_eq!(mapping.len(), keys.len());
        for (&k, &d) in keys.iter().zip(&mapping) {
            assert_eq!(digit(h.hash_u64(k), 0) as u8, d);
        }
        // Replaying the mapping reproduces the partition sizes.
        let mut sizes = [0usize; FANOUT];
        for &d in &mapping {
            sizes[d as usize] += 1;
        }
        for (d, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), sizes[d], "partition {d}");
        }
    }

    #[test]
    fn level_selects_digit() {
        let keys = pseudo_random_keys(5_000, 13);
        let h = Murmur2::default();
        for level in [0u32, 1, 3, 7] {
            let expect = reference_parts(&keys, h, level);
            assert_eq!(flat(&partition_unrolled(&keys, h, level)), expect, "level {level}");
        }
    }

    #[test]
    fn multi_chunk_input_equals_single_chunk() {
        let keys = pseudo_random_keys(10_000, 17);
        let h = Murmur2::default();
        let whole = flat(&partition_keys([keys.as_slice()].into_iter(), h, 0));
        let split = flat(&partition_keys(keys.chunks(777), h, 0));
        assert_eq!(whole, split);
    }

    #[test]
    fn empty_input_gives_empty_parts() {
        let parts = partition_keys(std::iter::empty(), Murmur2::default(), 0);
        assert_eq!(parts.len(), FANOUT);
        assert!(parts.iter().all(|p| p.is_empty()));
    }
}
