//! Software-write-combining buffers and non-temporal stores.
//!
//! The paper flushes the per-partition cache-line buffers with
//! **non-temporal stores** that bypass the cache (§4.2). On bare-metal
//! x86_64 that avoids the read-before-write of normal stores. On the
//! virtualized hosts this reproduction also runs on, however, `movnti`
//! rotating across 256 output streams measurably *regresses* (the
//! hypervisor's write-combining emulation drains partial buffers), while
//! plain stores of a full 64-byte line perform as intended. [`FlushMode`]
//! therefore selects the flush instruction: `Auto` uses plain stores
//! unless `HSA_NT_STORES=1` is set, and the `fig03` harness measures both
//! so the trade-off is visible on every machine.

use hsa_columnar::ChunkedVec;
use hsa_hash::FANOUT;
use std::sync::OnceLock;

/// u64 words per cache line (64 B).
pub const LINE_U64S: usize = 8;

/// How full write-combining lines are flushed to their partition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlushMode {
    /// Plain (cached) 64-byte copies.
    Cached,
    /// Non-temporal stores (`movnti`), bypassing the cache — the paper's
    /// choice, right for bare-metal memory-bandwidth-bound runs.
    Streaming,
}

impl FlushMode {
    /// `Streaming` iff the environment sets `HSA_NT_STORES=1`, else
    /// `Cached` (the safe default on virtualized hardware).
    pub fn auto() -> Self {
        static MODE: OnceLock<FlushMode> = OnceLock::new();
        *MODE.get_or_init(|| {
            if std::env::var("HSA_NT_STORES").is_ok_and(|v| v == "1") {
                FlushMode::Streaming
            } else {
                FlushMode::Cached
            }
        })
    }
}

/// Flush-traffic metrics of one partitioning or scatter pass, accumulated
/// from the [`SwcBuffers`] it used. The counters live in the buffer struct
/// itself and cost one add per *flushed line* (every 8 pushes), so they are
/// always on; observed kernel variants surface them to callers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionMetrics {
    /// Full 64-byte lines flushed out of the write-combining buffers.
    pub swc_flushes: u64,
    /// Bytes moved through the flush path: 64 per full line plus the
    /// residual values drained at end of input.
    pub swc_flush_bytes: u64,
    /// Whether the flushes used non-temporal (`movnti`) stores; when true,
    /// `swc_flushes * 64` of `swc_flush_bytes` bypassed the cache.
    pub streaming: bool,
}

impl PartitionMetrics {
    /// Fold `other` into `self` (`streaming` is OR-ed: any streaming pass
    /// marks the total as containing non-temporal traffic).
    pub fn merge(&mut self, other: &PartitionMetrics) {
        self.swc_flushes += other.swc_flushes;
        self.swc_flush_bytes += other.swc_flush_bytes;
        self.streaming |= other.streaming;
    }
}

/// One cache-line-aligned buffer line.
#[repr(align(64))]
#[derive(Copy, Clone)]
struct Line([u64; LINE_U64S]);

/// The write-combining state: one cache line per partition (16 KiB total —
/// resident in L1/L2 by construction) plus fill counters.
pub(crate) struct SwcBuffers {
    lines: Box<[Line; FANOUT]>,
    fill: [u8; FANOUT],
    streaming: bool,
    flushes: u64,
    drained_values: u64,
}

impl SwcBuffers {
    pub(crate) fn new() -> Self {
        Self::with_mode(FlushMode::auto())
    }

    pub(crate) fn with_mode(mode: FlushMode) -> Self {
        Self {
            lines: Box::new([Line([0; LINE_U64S]); FANOUT]),
            fill: [0; FANOUT],
            streaming: mode == FlushMode::Streaming,
            flushes: 0,
            drained_values: 0,
        }
    }

    /// Accumulate this buffer's flush traffic into `m`. Call after
    /// draining; counters keep accumulating if the buffer is reused.
    pub(crate) fn add_metrics_to(&self, m: &mut PartitionMetrics) {
        m.swc_flushes += self.flushes;
        m.swc_flush_bytes += self.flushes * (LINE_U64S as u64 * 8) + self.drained_values * 8;
        m.streaming |= self.streaming;
    }

    /// Append `value` to partition `d`, flushing the line into `dst` when
    /// it fills.
    #[inline(always)]
    pub(crate) fn push(&mut self, d: usize, value: u64, dst: &mut ChunkedVec<u64>) {
        let fill = self.fill[d] as usize;
        self.lines[d].0[fill] = value;
        if fill + 1 == LINE_U64S {
            if self.streaming {
                // SAFETY: `extend_with_line` hands `spare` valid for
                // LINE_U64S writes and `src` is the full buffered line —
                // exactly `stream_line`'s contract.
                dst.extend_with_line(&self.lines[d].0, |spare, src| unsafe {
                    stream_line(spare, src)
                });
            } else {
                // SAFETY: same pointer contract as above; `spare` and
                // `src` never overlap (`spare` is spare capacity).
                dst.extend_with_line(&self.lines[d].0, |spare, src| unsafe {
                    std::ptr::copy_nonoverlapping(src, spare, LINE_U64S)
                });
            }
            self.flushes += 1;
            self.fill[d] = 0;
        } else {
            self.fill[d] = fill as u8 + 1;
        }
    }

    /// Same, but into a flat `Vec` (the over-allocation ablation variant).
    #[inline(always)]
    pub(crate) fn push_flat(&mut self, d: usize, value: u64, dst: &mut Vec<u64>) {
        let fill = self.fill[d] as usize;
        self.lines[d].0[fill] = value;
        if fill + 1 == LINE_U64S {
            dst.reserve(LINE_U64S);
            let len = dst.len();
            // SAFETY: `reserve` guarantees LINE_U64S spare slots past
            // `len`, both copy paths initialize exactly that many, and
            // `set_len` only covers the initialized prefix.
            unsafe {
                let spare = dst.as_mut_ptr().add(len);
                if self.streaming {
                    stream_line(spare, self.lines[d].0.as_ptr());
                } else {
                    std::ptr::copy_nonoverlapping(self.lines[d].0.as_ptr(), spare, LINE_U64S);
                }
                dst.set_len(len + LINE_U64S);
            }
            self.flushes += 1;
            self.fill[d] = 0;
        } else {
            self.fill[d] = fill as u8 + 1;
        }
    }

    /// Drain all partially filled lines (end of input) into the chunked
    /// destinations.
    pub(crate) fn drain(&mut self, dsts: &mut [ChunkedVec<u64>]) {
        for ((dst, line), fill) in dsts.iter_mut().zip(self.lines.iter()).zip(&mut self.fill) {
            if *fill > 0 {
                dst.extend_from_slice(&line.0[..*fill as usize]);
                self.drained_values += *fill as u64;
                *fill = 0;
            }
        }
        sfence();
    }

    /// Drain into flat vectors.
    pub(crate) fn drain_flat(&mut self, dsts: &mut [Vec<u64>]) {
        for ((dst, line), fill) in dsts.iter_mut().zip(self.lines.iter()).zip(&mut self.fill) {
            if *fill > 0 {
                dst.extend_from_slice(&line.0[..*fill as usize]);
                self.drained_values += *fill as u64;
                *fill = 0;
            }
        }
        sfence();
    }
}

/// Store one cache line (8 × u64) from `src` to `dst`, bypassing the cache
/// on x86_64 (`movnti`). Falls back to plain copies elsewhere.
///
/// # Safety
/// `dst` must be valid for writing 8 u64s; `src` for reading 8.
#[inline(always)]
pub(crate) unsafe fn stream_line(dst: *mut u64, src: *const u64) {
    // Miri has no model for non-temporal stores; use the plain copy there
    // so the unsafe scatter/SWC paths stay checkable.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        use std::arch::x86_64::_mm_stream_si64;
        for i in 0..LINE_U64S {
            // SAFETY: the caller promises `dst`/`src` valid for 8 u64s
            // (the function's contract); `i < LINE_U64S` keeps every
            // offset in that range, and `movnti` needs no alignment
            // beyond the u64's natural one.
            unsafe { _mm_stream_si64(dst.add(i) as *mut i64, *src.add(i) as i64) };
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        // SAFETY: caller guarantees both pointers valid for 8 u64s and
        // the regions come from distinct allocations.
        unsafe { std::ptr::copy_nonoverlapping(src, dst, LINE_U64S) };
    }
}

/// Order streaming stores before subsequent loads (no-op off x86_64).
#[inline]
pub(crate) fn sfence() {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `sfence` is a pure ordering barrier with no memory
    // operands or preconditions; always available on x86_64.
    unsafe {
        std::arch::x86_64::_mm_sfence();
    }
}

/// `memcpy` built on the same non-temporal store path — the bandwidth
/// reference bar of Figure 3 ("a self-implemented memcpy using
/// non-temporal store instructions").
pub fn memcpy_nt(dst: &mut Vec<u64>, src: &[u64]) {
    dst.clear();
    dst.reserve(src.len());
    let mut chunks = src.chunks_exact(LINE_U64S);
    let mut len = 0usize;
    // SAFETY: `reserve(src.len())` guarantees capacity for every write
    // below; `len` tracks exactly how many slots are initialized (full
    // lines, then the remainder), so `set_len` covers only written
    // elements and `base` is never offset past capacity.
    unsafe {
        let base = dst.as_mut_ptr();
        for chunk in &mut chunks {
            stream_line(base.add(len), chunk.as_ptr());
            len += LINE_U64S;
        }
        let rem = chunks.remainder();
        std::ptr::copy_nonoverlapping(rem.as_ptr(), base.add(len), rem.len());
        dst.set_len(len + rem.len());
    }
    sfence();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_nt_copies_exactly() {
        let src: Vec<u64> = (0..1000).collect();
        let mut dst = Vec::new();
        memcpy_nt(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    fn memcpy_nt_handles_unaligned_tail_and_empty() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let src: Vec<u64> = (0..n as u64).collect();
            let mut dst = Vec::new();
            memcpy_nt(&mut dst, &src);
            assert_eq!(dst, src, "n={n}");
        }
    }

    #[test]
    fn buffers_flush_on_line_boundary_both_modes() {
        for mode in [FlushMode::Cached, FlushMode::Streaming] {
            let mut bufs = SwcBuffers::with_mode(mode);
            let mut dst = vec![ChunkedVec::new(); FANOUT];
            for i in 0..20u64 {
                bufs.push(3, i, &mut dst[3]);
            }
            // 16 flushed (two lines), 4 still buffered.
            assert_eq!(dst[3].len(), 16, "{mode:?}");
            bufs.drain(&mut dst);
            assert_eq!(dst[3].to_vec(), (0..20).collect::<Vec<u64>>(), "{mode:?}");
        }
    }

    #[test]
    fn flat_buffers_flush_and_drain_both_modes() {
        for mode in [FlushMode::Cached, FlushMode::Streaming] {
            let mut bufs = SwcBuffers::with_mode(mode);
            let mut dst: Vec<Vec<u64>> = vec![Vec::new(); FANOUT];
            for i in 0..9u64 {
                bufs.push_flat(7, i, &mut dst[7]);
            }
            assert_eq!(dst[7].len(), 8, "{mode:?}");
            bufs.drain_flat(&mut dst);
            assert_eq!(dst[7], (0..9).collect::<Vec<u64>>(), "{mode:?}");
        }
    }

    #[test]
    fn flush_metrics_account_for_every_value() {
        let mut bufs = SwcBuffers::with_mode(FlushMode::Cached);
        let mut dst = vec![ChunkedVec::new(); FANOUT];
        for i in 0..20u64 {
            bufs.push(3, i, &mut dst[3]);
        }
        bufs.drain(&mut dst);
        let mut m = PartitionMetrics::default();
        bufs.add_metrics_to(&mut m);
        assert_eq!(m.swc_flushes, 2); // 16 of 20 values left in full lines
        assert_eq!(m.swc_flush_bytes, 20 * 8); // ... but every byte is counted
        assert!(!m.streaming);
    }

    #[test]
    fn auto_mode_defaults_to_cached() {
        // Unless the env var is set in the test environment.
        if std::env::var("HSA_NT_STORES").is_err() {
            assert_eq!(FlushMode::auto(), FlushMode::Cached);
        }
    }
}
