//! Radix partitioning tuned to modern hardware (§4.2, Figure 3).
//!
//! `PARTITIONING` is the framework's fast path when early aggregation does
//! not pay off. This crate implements the full ablation ladder the paper
//! measures in Figure 3:
//!
//! | variant | Figure 3 label | function |
//! |---|---|---|
//! | naive, partition by key bits | `key` | [`partition_naive`] + [`hsa_hash::Identity`] |
//! | naive, partition by hash | `hash` | [`partition_naive`] + [`hsa_hash::Murmur2`] |
//! | software write-combining | `swc` | [`partition_swc`] |
//! | + 16-way unrolled hashing | `oo` | [`partition_unrolled`] |
//! | + two-level output (production) | `2lvl` | [`partition_keys`] / [`partition_keys_mapped`] |
//! | scatter an aggregate column | `map` | [`scatter_by_digits`] |
//! | reference bandwidth | `memcpy` | [`memcpy_nt`] |
//!
//! **Software write-combining** (Intel; also Balkesen et al., Wassenberg &
//! Sanders) buffers one 64-byte cache line per partition and flushes it
//! with non-temporal stores that bypass the cache, avoiding the
//! read-before-write of normal stores and confining the TLB working set to
//! the 256-line buffer array instead of 256 output pages.
//!
//! The production variants write into the two-level
//! [`hsa_columnar::ChunkedVec`] (list of arrays), which the paper measures
//! at ~2% below over-allocated flat output — the price of not needing
//! virtual-memory tricks.

mod kernels;
mod scatter;
mod swc;

pub use kernels::{
    partition_keys, partition_keys_mapped, partition_keys_mapped_observed, partition_keys_observed,
    partition_naive, partition_overalloc, partition_swc, partition_swc_with_mode,
    partition_unrolled, partition_unrolled_with_mode,
};
pub use scatter::{scatter_by_digits, scatter_by_digits_observed};
pub use swc::{memcpy_nt, FlushMode, PartitionMetrics, LINE_U64S};

use hsa_columnar::ChunkedVec;
use hsa_hash::FANOUT;

/// The 256 output partitions of one partitioning pass.
pub type Parts = Vec<ChunkedVec<u64>>;

/// Fresh empty partitions.
pub fn empty_parts() -> Parts {
    (0..FANOUT).map(|_| ChunkedVec::new()).collect()
}

/// Fixed buffer bytes one partitioning pass holds in software-write-
/// combining state: one 64-byte line per partition for the key pass plus
/// one per partition for each scattered state column. The operator's
/// memory budget charges this up front per pass.
pub fn swc_pass_bytes(n_state_cols: usize) -> u64 {
    ((1 + n_state_cols) * FANOUT * LINE_U64S * 8) as u64
}

#[cfg(test)]
pub(crate) mod testutil {
    use hsa_hash::{digit, Hasher64};

    /// Reference partitioning: stable, obvious, slow.
    pub fn reference_parts<H: Hasher64>(keys: &[u64], hasher: H, level: u32) -> Vec<Vec<u64>> {
        let mut parts = vec![Vec::new(); hsa_hash::FANOUT];
        for &k in keys {
            parts[digit(hasher.hash_u64(k), level)].push(k);
        }
        parts
    }

    pub fn pseudo_random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }
}
