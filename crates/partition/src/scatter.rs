//! Applying the digit mapping to aggregate columns (§3.3, Figure 3 `map`).
//!
//! Once the grouping column of a run has been partitioned and its digit
//! mapping recorded, every aggregate column is scattered by replaying the
//! digits through a fresh set of write-combining buffers. Because rows are
//! routed in the same order, each value lands at exactly the offset of its
//! key — no per-row offsets need to be stored, the mapping is one byte per
//! row ("their memory access pattern is equivalent", §4.2).

use crate::swc::SwcBuffers;
use crate::{empty_parts, PartitionMetrics, Parts};

/// Scatter one value column into 256 partitions according to the digit
/// mapping produced by
/// [`partition_keys_mapped`](crate::partition_keys_mapped).
///
/// `value_chunks` must yield exactly `digits.len()` values in total.
pub fn scatter_by_digits<'a>(
    digits: &[u8],
    value_chunks: impl Iterator<Item = &'a [u64]>,
) -> Parts {
    scatter_by_digits_observed(digits, value_chunks, &mut PartitionMetrics::default())
}

/// [`scatter_by_digits`] that also accumulates the pass's write-combining
/// flush traffic into `metrics`.
pub fn scatter_by_digits_observed<'a>(
    digits: &[u8],
    value_chunks: impl Iterator<Item = &'a [u64]>,
    metrics: &mut PartitionMetrics,
) -> Parts {
    let mut parts = empty_parts();
    let mut bufs = SwcBuffers::new();
    let mut offset = 0usize;
    for chunk in value_chunks {
        let ds = &digits[offset..offset + chunk.len()];
        for (&d, &v) in ds.iter().zip(chunk) {
            bufs.push(d as usize, v, &mut parts[d as usize]);
        }
        offset += chunk.len();
    }
    assert_eq!(offset, digits.len(), "value column shorter than mapping");
    bufs.drain(&mut parts);
    bufs.add_metrics_to(metrics);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_keys_mapped;
    use crate::testutil::pseudo_random_keys;
    use hsa_hash::Murmur2;

    #[test]
    fn values_land_next_to_their_keys() {
        let keys = pseudo_random_keys(20_000, 5);
        // Value column derived from the key so alignment is checkable.
        let vals: Vec<u64> = keys.iter().map(|k| k ^ 0xdead_beef).collect();
        let h = Murmur2::default();
        let mut mapping = Vec::new();
        let key_parts = partition_keys_mapped([keys.as_slice()].into_iter(), h, 0, &mut mapping);
        let val_parts = scatter_by_digits(&mapping, [vals.as_slice()].into_iter());
        for (kp, vp) in key_parts.iter().zip(&val_parts) {
            assert_eq!(kp.len(), vp.len());
            for (k, v) in kp.iter().zip(vp.iter()) {
                assert_eq!(v, k ^ 0xdead_beef);
            }
        }
    }

    #[test]
    fn scatter_in_chunks_matches_whole() {
        let keys = pseudo_random_keys(10_000, 9);
        let vals: Vec<u64> = (0..keys.len() as u64).collect();
        let h = Murmur2::default();
        let mut mapping = Vec::new();
        let _ = partition_keys_mapped([keys.as_slice()].into_iter(), h, 0, &mut mapping);
        let whole = scatter_by_digits(&mapping, [vals.as_slice()].into_iter());
        let chunked = scatter_by_digits(&mapping, vals.chunks(333));
        for (a, b) in whole.iter().zip(&chunked) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
    }

    #[test]
    #[should_panic(expected = "value column shorter than mapping")]
    fn length_mismatch_panics() {
        let digits = vec![0u8; 10];
        let vals = vec![1u64; 5];
        let _ = scatter_by_digits(&digits, [vals.as_slice()].into_iter());
    }

    #[test]
    fn empty_mapping_empty_output() {
        let parts = scatter_by_digits(&[], std::iter::empty());
        assert!(parts.iter().all(|p| p.is_empty()));
    }
}
