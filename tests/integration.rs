//! End-to-end integration tests: every strategy × every §6.5 distribution
//! against a scalar reference, across the whole crate stack.

use hashing_is_sorting::datagen::{distinct as count_distinct, generate, Distribution};
use hashing_is_sorting::{aggregate, distinct, AdaptiveParams, AggSpec, AggregateConfig, Strategy};
use std::collections::BTreeMap;

fn reference(keys: &[u64], vals: &[u64]) -> BTreeMap<u64, (u64, u64, u64, u64)> {
    let mut m = BTreeMap::new();
    for (&k, &v) in keys.iter().zip(vals) {
        let e = m.entry(k).or_insert((0u64, 0u64, u64::MAX, 0u64));
        e.0 += 1;
        e.1 += v;
        e.2 = e.2.min(v);
        e.3 = e.3.max(v);
    }
    m
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::HashingOnly,
        Strategy::PartitionAlways { passes: 1 },
        Strategy::PartitionAlways { passes: 2 },
        Strategy::Adaptive(AdaptiveParams::default()),
    ]
}

fn test_cfg(strategy: Strategy) -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 256 << 10, // small cache: recursion kicks in at test sizes
        threads: 2,
        strategy,
        fill_percent: 25,
        morsel_rows: 1 << 13,
        ..AggregateConfig::default()
    }
}

#[test]
fn every_distribution_every_strategy_matches_reference() {
    let n = 50_000;
    let k = 8_192;
    for dist in Distribution::all() {
        let keys = generate(dist, n, k, 99);
        let vals: Vec<u64> = (0..n as u64).map(|i| i % 1000).collect();
        let expect = reference(&keys, &vals);
        for strat in strategies() {
            let (out, _) = aggregate(
                &keys,
                &[&vals],
                &[AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)],
                &test_cfg(strat),
            );
            let got: BTreeMap<u64, (u64, u64, u64, u64)> = out
                .sorted_rows()
                .into_iter()
                .map(|(key, s)| (key, (s[0], s[1], s[2], s[3])))
                .collect();
            assert_eq!(got, expect, "{dist:?} × {strat:?}");
        }
    }
}

#[test]
fn distinct_counts_match_datagen() {
    for dist in Distribution::all() {
        let keys = generate(dist, 30_000, 4_096, 7);
        let expect = count_distinct(&keys);
        let (out, _) = distinct(&keys, &test_cfg(Strategy::Adaptive(AdaptiveParams::default())));
        assert_eq!(out.n_groups(), expect, "{dist:?}");
    }
}

#[test]
fn thread_counts_agree() {
    let keys = generate(Distribution::SelfSimilar, 60_000, 10_000, 3);
    let vals: Vec<u64> = (0..keys.len() as u64).collect();
    let mut baseline = None;
    for threads in [1usize, 2, 3, 4, 8] {
        let cfg =
            AggregateConfig { threads, ..test_cfg(Strategy::Adaptive(AdaptiveParams::default())) };
        let (out, _) = aggregate(&keys, &[&vals], &[AggSpec::sum(0)], &cfg);
        let rows = out.sorted_rows();
        match &baseline {
            None => baseline = Some(rows),
            Some(b) => assert_eq!(&rows, b, "threads = {threads}"),
        }
    }
}

#[test]
fn multiple_aggregate_columns_are_independent() {
    let n = 20_000;
    let keys = generate(Distribution::Uniform, n, 500, 11);
    let a: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
    let (out, _) = aggregate(
        &keys,
        &[&a, &b],
        &[AggSpec::sum(0), AggSpec::sum(1), AggSpec::max(0), AggSpec::min(1), AggSpec::avg(0)],
        &test_cfg(Strategy::Adaptive(AdaptiveParams::default())),
    );
    // Cross-check the totals column-wise.
    let sum_a: u64 = out.column_u64(0).unwrap().iter().sum();
    let sum_b: u64 = out.column_u64(1).unwrap().iter().sum();
    assert_eq!(sum_a, a.iter().sum::<u64>());
    assert_eq!(sum_b, b.iter().sum::<u64>());
    // AVG(a) per group equals sum/count from the same run.
    let counts: Vec<u64> = {
        let (c, _) = aggregate(
            &keys,
            &[],
            &[AggSpec::count()],
            &test_cfg(Strategy::Adaptive(AdaptiveParams::default())),
        );
        let m: BTreeMap<u64, u64> =
            c.keys.iter().copied().zip(c.states[0].iter().copied()).collect();
        out.keys.iter().map(|k| m[k]).collect()
    };
    let sums = out.column_u64(0).unwrap();
    for (r, (&sum, &count)) in sums.iter().zip(&counts).enumerate() {
        let avg = out.value(4, r);
        let expect = sum as f64 / count as f64;
        assert!((avg - expect).abs() < 1e-9);
    }
}

#[test]
fn extreme_cardinalities() {
    let cfg = test_cfg(Strategy::Adaptive(AdaptiveParams::default()));
    // K = 1
    let (out, _) = distinct(&vec![9u64; 30_000], &cfg);
    assert_eq!(out.n_groups(), 1);
    // K = N
    let keys: Vec<u64> = (0..30_000u64).map(|i| i * 2 + 1).collect();
    let (out, _) = distinct(&keys, &cfg);
    assert_eq!(out.n_groups(), 30_000);
}

#[test]
fn stats_account_for_all_rows() {
    // Level-0 routing must cover exactly N rows for every strategy.
    let keys = generate(Distribution::Uniform, 40_000, 20_000, 5);
    for strat in strategies() {
        let (_, stats) = distinct(&keys, &test_cfg(strat));
        let level0 = stats.hash_rows_per_level[0] + stats.part_rows_per_level[0];
        assert_eq!(level0, 40_000, "{strat:?}");
    }
}

#[test]
fn adaptive_alpha_extremes_stay_correct() {
    let keys = generate(Distribution::MovingCluster, 50_000, 20_000, 8);
    for params in [
        AdaptiveParams { alpha0: 0.0, c: 10.0 }, // never switch
        AdaptiveParams { alpha0: f64::INFINITY, c: 0.5 }, // always switch, tiny budget
        AdaptiveParams { alpha0: f64::INFINITY, c: 1e9 }, // switch once, never back
    ] {
        let (out, _) = distinct(&keys, &test_cfg(Strategy::Adaptive(params)));
        assert_eq!(out.n_groups(), count_distinct(&keys), "{params:?}");
    }
}
