//! Cross-validation: the five prior-work baselines and the paper's
//! operator must produce identical groups on every distribution — the
//! precondition for the Figure 8 timing comparison to be meaningful.

use hashing_is_sorting::baselines::{all_baselines, BaselineConfig};
use hashing_is_sorting::datagen::{generate, Distribution};
use hashing_is_sorting::{aggregate, AdaptiveParams, AggSpec, AggregateConfig, Strategy};
use std::collections::BTreeMap;

fn core_counts(keys: &[u64]) -> BTreeMap<u64, u64> {
    let cfg = AggregateConfig {
        cache_bytes: 128 << 10,
        threads: 2,
        strategy: Strategy::Adaptive(AdaptiveParams::default()),
        fill_percent: 25,
        morsel_rows: 1 << 12,
        ..AggregateConfig::default()
    };
    let (out, _) = aggregate(keys, &[], &[AggSpec::count()], &cfg);
    out.keys.iter().copied().zip(out.states[0].iter().copied()).collect()
}

#[test]
fn baselines_agree_with_operator_on_all_distributions() {
    let cfg = BaselineConfig { threads: 2, cache_bytes: 64 << 10, k_hint: 8192, count: true };
    for dist in Distribution::all() {
        let keys = generate(dist, 25_000, 4_096, 13);
        let expect = core_counts(&keys);
        for b in all_baselines() {
            let got: BTreeMap<u64, u64> = b.run(&keys, &cfg).sorted_pairs().into_iter().collect();
            assert_eq!(got, expect, "{} on {dist:?}", b.name());
        }
    }
}

#[test]
fn baselines_agree_at_high_cardinality() {
    let cfg = BaselineConfig { threads: 3, cache_bytes: 64 << 10, k_hint: 50_000, count: true };
    let keys = generate(Distribution::Uniform, 80_000, 60_000, 17);
    let expect = core_counts(&keys);
    for b in all_baselines() {
        let got: BTreeMap<u64, u64> = b.run(&keys, &cfg).sorted_pairs().into_iter().collect();
        assert_eq!(got, expect, "{}", b.name());
    }
}
