//! Stress and failure-injection tests: adversarial inputs, aggressive
//! configurations, and concurrency hammering beyond the targeted units.

use hashing_is_sorting::datagen::{generate, Distribution, SplitMix64};
use hashing_is_sorting::kernels::{digit, Hasher64, Murmur2};
use hashing_is_sorting::{aggregate, distinct, AdaptiveParams, AggSpec, AggregateConfig, Strategy};

fn cfg(cache_bytes: usize, threads: usize, morsel_rows: usize) -> AggregateConfig {
    AggregateConfig {
        cache_bytes,
        threads,
        strategy: Strategy::Adaptive(AdaptiveParams::default()),
        fill_percent: 25,
        morsel_rows,
        ..AggregateConfig::default()
    }
}

/// Keys engineered to collide in their first radix digit: the recursion
/// must descend to deeper digits instead of spinning on level 0.
#[test]
fn adversarial_shared_first_digit() {
    let h = Murmur2::default();
    let mut rng = SplitMix64::new(42);
    let mut keys = Vec::new();
    while keys.len() < 30_000 {
        let k = rng.next_u64();
        if digit(h.hash_u64(k), 0) == 0 {
            keys.push(k);
        }
    }
    // Duplicate each key so aggregation has something to merge.
    let doubled: Vec<u64> = keys.iter().chain(keys.iter()).copied().collect();
    let (out, stats) = aggregate(&doubled, &[], &[AggSpec::count()], &cfg(64 << 10, 2, 1 << 12));
    assert_eq!(out.n_groups(), keys.len());
    assert!(out.states[0].iter().all(|&c| c == 2));
    assert!(stats.passes_used() >= 2, "must recurse past the shared digit");
}

/// The absolute minimum table (2 slots per block) with the maximum fill:
/// constant sealing, still correct.
#[test]
fn minimum_table_maximum_fill() {
    let keys = generate(Distribution::Uniform, 20_000, 5_000, 9);
    let config = AggregateConfig {
        cache_bytes: 1, // clamped up to the minimum table internally
        fill_percent: 100,
        strategy: Strategy::HashingOnly, // force sealing (adaptive would switch away)
        ..cfg(1, 2, 1 << 10)
    };
    let (out, stats) = distinct(&keys, &config);
    assert_eq!(out.n_groups(), hashing_is_sorting::datagen::distinct(&keys));
    assert!(stats.seals > 10, "tiny tables must seal constantly: {}", stats.seals);
}

/// One-row morsels: the work-stealing queue handles tens of thousands of
/// tiny tasks without losing or duplicating rows.
#[test]
fn one_row_morsels() {
    let keys = generate(Distribution::Zipf, 5_000, 100, 3);
    let config = cfg(64 << 10, 4, 1);
    let (out, _) = aggregate(&keys, &[], &[AggSpec::count()], &config);
    let total: u64 = out.states[0].iter().sum();
    assert_eq!(total, keys.len() as u64);
}

/// Many concurrent operator invocations from different threads (operators
/// must not share hidden mutable state).
#[test]
fn concurrent_operator_invocations() {
    let keys = generate(Distribution::Uniform, 30_000, 2_000, 5);
    let expected = hashing_is_sorting::datagen::distinct(&keys);
    std::thread::scope(|s| {
        for t in 0..4 {
            let keys = &keys;
            s.spawn(move || {
                for i in 0..5 {
                    let (out, _) = distinct(keys, &cfg(128 << 10, 1 + (t + i) % 3, 1 << 12));
                    assert_eq!(out.n_groups(), expected);
                }
            });
        }
    });
}

/// Extreme values: u64::MAX-adjacent keys and values through every path.
/// (u64::MAX itself is a legal key for the operator — only the baselines
/// reserve it as a sentinel.)
#[test]
fn extreme_key_and_value_ranges() {
    let keys = vec![u64::MAX, 0, u64::MAX, u64::MAX - 1, 0, u64::MAX];
    let vals = vec![u64::MAX, 0, 1, u64::MAX, 5, 2];
    let (out, _) = aggregate(
        &keys,
        &[&vals],
        &[AggSpec::count(), AggSpec::min(0), AggSpec::max(0)],
        &AggregateConfig::default(),
    );
    let rows = out.sorted_rows();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0], (0, vec![2, 0, 5]));
    assert_eq!(rows[1], (u64::MAX - 1, vec![1, u64::MAX, u64::MAX]));
    // key u64::MAX: count 3, min 1, max u64::MAX (sum would wrap; not asked).
    assert_eq!(rows[2], (u64::MAX, vec![3, 1, u64::MAX]));
}

/// Large-ish end-to-end run on every strategy at default configuration —
/// a smoke test at the scale the benches use.
#[test]
#[ignore = "slow; run with --ignored"]
fn large_scale_smoke() {
    let keys = generate(Distribution::Uniform, 1 << 22, 1 << 19, 1);
    for strategy in [
        Strategy::HashingOnly,
        Strategy::PartitionAlways { passes: 1 },
        Strategy::Adaptive(AdaptiveParams::default()),
    ] {
        let (out, _) = distinct(&keys, &AggregateConfig::with_strategy(strategy));
        assert_eq!(out.n_groups(), hashing_is_sorting::datagen::distinct(&keys));
    }
}
