//! Property-based tests (proptest) for the DESIGN.md §7 invariants.

use hashing_is_sorting::kernels::{
    digit, partition_keys_mapped, scatter_by_digits, AggTable, Hasher64, Insert, Murmur2,
    TableConfig,
};
use hashing_is_sorting::{aggregate, AdaptiveParams, AggSpec, AggregateConfig, Strategy as Routing};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Small cache + morsels so recursion happens at proptest input sizes.
fn tiny_cfg(strategy: Routing) -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 32 << 10,
        threads: 2,
        strategy,
        fill_percent: 25,
        morsel_rows: 512,
    }
}

fn reference(keys: &[u64], vals: &[u64]) -> BTreeMap<u64, (u64, u64, u64, u64)> {
    let mut m = BTreeMap::new();
    for (&k, &v) in keys.iter().zip(vals) {
        let e = m.entry(k).or_insert((0u64, 0u64, u64::MAX, 0u64));
        e.0 += 1;
        e.1 = e.1.wrapping_add(v);
        e.2 = e.2.min(v);
        e.3 = e.3.max(v);
    }
    m
}

/// Row generator: keys from a narrow domain (forces collisions) or the
/// full u64 range (forces distinctness), values arbitrary.
fn rows() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let narrow = prop::collection::vec(0u64..64, 0..2000);
    let wide = prop::collection::vec(any::<u64>().prop_map(|k| k % (1 << 30)), 0..2000);
    prop_oneof![narrow, wide].prop_flat_map(|keys| {
        let n = keys.len();
        (Just(keys), prop::collection::vec(0u64..1_000_000, n..=n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: operator output equals a scalar fold, any strategy.
    #[test]
    fn operator_matches_reference((keys, vals) in rows(), strat_ix in 0usize..4) {
        let strategy = [
            Routing::HashingOnly,
            Routing::PartitionAlways { passes: 1 },
            Routing::PartitionAlways { passes: 2 },
            Routing::Adaptive(AdaptiveParams::default()),
        ][strat_ix];
        let (out, _) = aggregate(
            &keys,
            &[&vals],
            &[AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)],
            &tiny_cfg(strategy),
        );
        let got: BTreeMap<u64, (u64, u64, u64, u64)> = out
            .sorted_rows()
            .into_iter()
            .map(|(k, s)| (k, (s[0], s[1], s[2], s[3])))
            .collect();
        prop_assert_eq!(got, reference(&keys, &vals));
    }

    /// Invariant 3: partitioning is a stable permutation into the right
    /// digits, and the mapping replay (invariant 4) aligns values with
    /// their keys.
    #[test]
    fn partitioning_permutes_and_mapping_aligns(keys in prop::collection::vec(any::<u64>(), 0..3000)) {
        let h = Murmur2::default();
        let vals: Vec<u64> = keys.iter().map(|k| k.wrapping_mul(31).wrapping_add(7)).collect();
        let mut mapping = Vec::new();
        let kp = partition_keys_mapped([keys.as_slice()].into_iter(), h, 0, &mut mapping);
        let vp = scatter_by_digits(&mapping, [vals.as_slice()].into_iter());

        // Permutation: total count and multiset preserved.
        let total: usize = kp.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, keys.len());
        let mut collected: Vec<u64> = kp.iter().flat_map(|p| p.iter()).collect();
        collected.sort_unstable();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(collected, sorted);

        for (d, (pk, pv)) in kp.iter().zip(&vp).enumerate() {
            prop_assert_eq!(pk.len(), pv.len());
            for (k, v) in pk.iter().zip(pv.iter()) {
                prop_assert_eq!(digit(h.hash_u64(k), 0), d);
                prop_assert_eq!(v, k.wrapping_mul(31).wrapping_add(7));
            }
        }
    }

    /// Invariant 2: a sealed table partitions its keys by digit and emits
    /// every inserted key exactly once.
    #[test]
    fn sealed_table_is_a_radix_partition(keys in prop::collection::vec(any::<u64>(), 0..800)) {
        let h = Murmur2::default();
        let mut t = AggTable::new(
            TableConfig { total_slots: 1 << 13, fill_percent: 25 },
            0,
            &[],
        );
        let mut inserted = Vec::new();
        for &k in &keys {
            match t.insert_key(k, h.hash_u64(k)) {
                Insert::New(_) => inserted.push(k),
                Insert::Hit(_) => {}
                Insert::Full => break,
            }
        }
        let mut emitted = Vec::new();
        let mut last_digit = None;
        t.seal(|d, ks, _| {
            if let Some(prev) = last_digit {
                assert!(d > prev, "digits must be emitted in order");
            }
            last_digit = Some(d);
            for &k in ks {
                assert_eq!(digit(h.hash_u64(k), 0), d);
                emitted.push(k);
            }
        });
        emitted.sort_unstable();
        inserted.sort_unstable();
        prop_assert_eq!(emitted, inserted);
    }

    /// Invariant 6: aggregating pre-aggregated halves equals aggregating
    /// the whole (super-aggregate correctness through the full operator).
    #[test]
    fn split_aggregation_composes((keys, vals) in rows()) {
        prop_assume!(keys.len() >= 2);
        let cfg = tiny_cfg(Routing::Adaptive(AdaptiveParams::default()));
        let mid = keys.len() / 2;
        let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)];

        // Whole input in one operator call.
        let (whole, _) = aggregate(&keys, &[&vals], &specs, &cfg);

        // Two halves, recombined by a BTreeMap super-aggregate.
        let (a, _) = aggregate(&keys[..mid], &[&vals[..mid]], &specs, &cfg);
        let (b, _) = aggregate(&keys[mid..], &[&vals[mid..]], &specs, &cfg);
        let mut merged: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
        for part in [a, b] {
            for (k, s) in part.sorted_rows() {
                let e = merged.entry(k).or_insert((0, 0, u64::MAX, 0));
                e.0 += s[0];
                e.1 = e.1.wrapping_add(s[1]);
                e.2 = e.2.min(s[2]);
                e.3 = e.3.max(s[3]);
            }
        }
        let got: BTreeMap<u64, (u64, u64, u64, u64)> = whole
            .sorted_rows()
            .into_iter()
            .map(|(k, s)| (k, (s[0], s[1], s[2], s[3])))
            .collect();
        prop_assert_eq!(got, merged);
    }

    /// COUNT conservation: counts sum to N under any adaptive parameters.
    #[test]
    fn counts_conserved_under_any_adaptive_params(
        (keys, _) in rows(),
        alpha0 in 0.0f64..100.0,
        c in 0.0f64..20.0,
    ) {
        let cfg = tiny_cfg(Routing::Adaptive(AdaptiveParams { alpha0, c }));
        let (out, _) = aggregate(&keys, &[], &[AggSpec::count()], &cfg);
        let total: u64 = out.states[0].iter().sum();
        prop_assert_eq!(total, keys.len() as u64);
    }
}
