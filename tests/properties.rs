//! Property-based tests for the DESIGN.md §7 invariants.
//!
//! Hand-rolled harness: a deterministic splitmix64 generator drives many
//! randomized cases per invariant, so failures reproduce exactly (the
//! failing case index and seed are in the panic message) without any
//! external property-testing dependency.

use hashing_is_sorting::kernels::{
    digit, partition_keys_mapped, scatter_by_digits, AggTable, Hasher64, Insert, Murmur2,
    TableConfig,
};
use hashing_is_sorting::obs::{Counter, Hist, Histogram, Recorder};
use hashing_is_sorting::{
    aggregate, aggregate_observed, AdaptiveParams, AggSpec, AggregateConfig, ObsConfig,
    Strategy as Routing,
};
use std::collections::BTreeMap;

const CASES: u64 = 64;

/// Deterministic splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn vec(&mut self, len: usize, bound: u64) -> Vec<u64> {
        (0..len).map(|_| self.below(bound)).collect()
    }
}

/// Run `body` for `CASES` seeds, labelling any panic with the case seed.
fn cases(name: &str, body: impl Fn(&mut Gen)) {
    for case in 0..CASES {
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut Gen::new(case))));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed at case seed {case}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Row generator: keys from a narrow domain (forces collisions) or a wide
/// one (forces distinctness), values arbitrary.
fn rows(g: &mut Gen) -> (Vec<u64>, Vec<u64>) {
    let n = g.below(2000) as usize;
    let key_bound = if g.next().is_multiple_of(2) { 64 } else { 1 << 30 };
    (g.vec(n, key_bound), g.vec(n, 1_000_000))
}

/// Small cache + morsels so recursion happens at test input sizes.
fn tiny_cfg(strategy: Routing) -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 32 << 10,
        threads: 2,
        strategy,
        fill_percent: 25,
        morsel_rows: 512,
        ..AggregateConfig::default()
    }
}

fn reference(keys: &[u64], vals: &[u64]) -> BTreeMap<u64, (u64, u64, u64, u64)> {
    let mut m = BTreeMap::new();
    for (&k, &v) in keys.iter().zip(vals) {
        let e = m.entry(k).or_insert((0u64, 0u64, u64::MAX, 0u64));
        e.0 += 1;
        e.1 = e.1.wrapping_add(v);
        e.2 = e.2.min(v);
        e.3 = e.3.max(v);
    }
    m
}

/// Invariant 1: operator output equals a scalar fold, any strategy.
#[test]
fn operator_matches_reference() {
    cases("operator_matches_reference", |g| {
        let (keys, vals) = rows(g);
        let strategy = [
            Routing::HashingOnly,
            Routing::PartitionAlways { passes: 1 },
            Routing::PartitionAlways { passes: 2 },
            Routing::Adaptive(AdaptiveParams::default()),
        ][g.below(4) as usize];
        let (out, _) = aggregate(
            &keys,
            &[&vals],
            &[AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)],
            &tiny_cfg(strategy),
        );
        let got: BTreeMap<u64, (u64, u64, u64, u64)> =
            out.sorted_rows().into_iter().map(|(k, s)| (k, (s[0], s[1], s[2], s[3]))).collect();
        assert_eq!(got, reference(&keys, &vals), "strategy {strategy:?}");
    });
}

/// Invariant 3: partitioning is a stable permutation into the right
/// digits, and the mapping replay (invariant 4) aligns values with
/// their keys.
#[test]
fn partitioning_permutes_and_mapping_aligns() {
    cases("partitioning_permutes_and_mapping_aligns", |g| {
        let n = g.below(3000) as usize;
        let keys: Vec<u64> = (0..n).map(|_| g.next()).collect();
        let h = Murmur2::default();
        let vals: Vec<u64> = keys.iter().map(|k| k.wrapping_mul(31).wrapping_add(7)).collect();
        let mut mapping = Vec::new();
        let kp = partition_keys_mapped([keys.as_slice()].into_iter(), h, 0, &mut mapping);
        let vp = scatter_by_digits(&mapping, [vals.as_slice()].into_iter());

        // Permutation: total count and multiset preserved.
        let total: usize = kp.iter().map(|p| p.len()).sum();
        assert_eq!(total, keys.len());
        let mut collected: Vec<u64> = kp.iter().flat_map(|p| p.iter()).collect();
        collected.sort_unstable();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(collected, sorted);

        for (d, (pk, pv)) in kp.iter().zip(&vp).enumerate() {
            assert_eq!(pk.len(), pv.len());
            for (k, v) in pk.iter().zip(pv.iter()) {
                assert_eq!(digit(h.hash_u64(k), 0), d);
                assert_eq!(v, k.wrapping_mul(31).wrapping_add(7));
            }
        }
    });
}

/// Invariant 2: a sealed table partitions its keys by digit and emits
/// every inserted key exactly once.
#[test]
fn sealed_table_is_a_radix_partition() {
    cases("sealed_table_is_a_radix_partition", |g| {
        let n = g.below(800) as usize;
        let keys: Vec<u64> = (0..n).map(|_| g.next()).collect();
        let h = Murmur2::default();
        let mut t = AggTable::new(TableConfig { total_slots: 1 << 13, fill_percent: 25 }, 0, &[]);
        let mut inserted = Vec::new();
        for &k in &keys {
            match t.insert_key(k, h.hash_u64(k)) {
                Insert::New(_) => inserted.push(k),
                Insert::Hit(_) => {}
                Insert::Full => break,
            }
        }
        let mut emitted = Vec::new();
        let mut last_digit = None;
        t.seal(|d, ks, _| {
            if let Some(prev) = last_digit {
                assert!(d > prev, "digits must be emitted in order");
            }
            last_digit = Some(d);
            for &k in ks {
                assert_eq!(digit(h.hash_u64(k), 0), d);
                emitted.push(k);
            }
        });
        emitted.sort_unstable();
        inserted.sort_unstable();
        assert_eq!(emitted, inserted);
    });
}

/// Invariant 6: aggregating pre-aggregated halves equals aggregating
/// the whole (super-aggregate correctness through the full operator).
#[test]
fn split_aggregation_composes() {
    cases("split_aggregation_composes", |g| {
        let (keys, vals) = rows(g);
        if keys.len() < 2 {
            return;
        }
        let cfg = tiny_cfg(Routing::Adaptive(AdaptiveParams::default()));
        let mid = keys.len() / 2;
        let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)];

        // Whole input in one operator call.
        let (whole, _) = aggregate(&keys, &[&vals], &specs, &cfg);

        // Two halves, recombined by a BTreeMap super-aggregate.
        let (a, _) = aggregate(&keys[..mid], &[&vals[..mid]], &specs, &cfg);
        let (b, _) = aggregate(&keys[mid..], &[&vals[mid..]], &specs, &cfg);
        let mut merged: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
        for part in [a, b] {
            for (k, s) in part.sorted_rows() {
                let e = merged.entry(k).or_insert((0, 0, u64::MAX, 0));
                e.0 += s[0];
                e.1 = e.1.wrapping_add(s[1]);
                e.2 = e.2.min(s[2]);
                e.3 = e.3.max(s[3]);
            }
        }
        let got: BTreeMap<u64, (u64, u64, u64, u64)> =
            whole.sorted_rows().into_iter().map(|(k, s)| (k, (s[0], s[1], s[2], s[3]))).collect();
        assert_eq!(got, merged);
    });
}

/// Metrics invariant: every level-0 row goes through exactly one routine,
/// and the deep recorder's row counters agree with the always-on stats.
#[test]
fn metrics_account_for_every_row() {
    cases("metrics_account_for_every_row", |g| {
        let (keys, _) = rows(g);
        let strategy = [
            Routing::HashingOnly,
            Routing::PartitionAlways { passes: 1 },
            Routing::Adaptive(AdaptiveParams::default()),
            Routing::Adaptive(AdaptiveParams { alpha0: g.below(5_000) as f64 / 100.0, c: 0.5 }),
        ][g.below(4) as usize];
        let (_, report) = aggregate_observed(
            &keys,
            &[],
            &[AggSpec::count()],
            &tiny_cfg(strategy),
            &ObsConfig::full(),
        );
        let st = &report.stats;
        let level0 = st.hash_rows_per_level.first().copied().unwrap_or(0)
            + st.part_rows_per_level.first().copied().unwrap_or(0);
        assert_eq!(level0, keys.len() as u64, "strategy {strategy:?}");
        let m = report.metrics.as_ref().unwrap().merged();
        assert_eq!(m.counter(Counter::HashRows), st.total_hash_rows());
        assert_eq!(m.counter(Counter::PartRows), st.total_part_rows());
        assert_eq!(m.counter(Counter::TablesSealed), m.hist(Hist::SealFillPct).count());
    });
}

/// Histogram invariant: the cumulative distribution is non-decreasing and
/// ends at the sample count, for arbitrary sample streams and merges.
#[test]
fn histogram_cumulative_is_monotone() {
    cases("histogram_cumulative_is_monotone", |g| {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let n = g.below(3000);
        for i in 0..n {
            let shift = g.below(64) as u32;
            let v = g.next() >> shift;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        let c = a.cumulative();
        for w in c.windows(2) {
            assert!(w[0] <= w[1], "cumulative must be non-decreasing");
        }
        assert_eq!(*c.last().unwrap(), n);
        assert_eq!(a.count(), n);
        assert_eq!(a.buckets().iter().sum::<u64>(), n);
        if n > 0 {
            assert!(a.quantile_bound(1.0) <= a.max());
        }
    });
}

/// Disabled-recorder invariant: arbitrary recording against a disabled
/// recorder leaves the snapshot all-zero (the no-op path really is a no-op).
#[test]
fn disabled_recorder_snapshot_is_all_zero() {
    cases("disabled_recorder_snapshot_is_all_zero", |g| {
        let r = Recorder::disabled();
        for _ in 0..g.below(200) {
            let w = g.below(8) as usize;
            r.add(w, Counter::ALL[g.below(Counter::COUNT as u64) as usize], g.next());
            r.observe(w, Hist::ALL[g.below(Hist::COUNT as u64) as usize], g.next());
            r.record_alpha(w, g.below(1000) as f64 / 10.0);
        }
        assert!(!r.is_enabled());
        let snap = r.snapshot();
        assert!(snap.is_zero());
        assert!(snap.workers.is_empty());
        assert!(snap.merged().is_zero());
    });
}

/// COUNT conservation: counts sum to N under any adaptive parameters.
#[test]
fn counts_conserved_under_any_adaptive_params() {
    cases("counts_conserved_under_any_adaptive_params", |g| {
        let (keys, _) = rows(g);
        let alpha0 = g.below(10_000) as f64 / 100.0;
        let c = g.below(2_000) as f64 / 100.0;
        let cfg = tiny_cfg(Routing::Adaptive(AdaptiveParams { alpha0, c }));
        let (out, _) = aggregate(&keys, &[], &[AggSpec::count()], &cfg);
        let total: u64 = out.states[0].iter().sum();
        assert_eq!(total, keys.len() as u64, "alpha0={alpha0} c={c}");
    });
}
