//! Measures what observability costs: the same 10M-row adaptive DISTINCT
//! with observability disabled, with deep metrics, and with metrics +
//! tracing. The disabled path is the instrumented hot loop hitting only
//! null checks — its cost must stay in the noise (<2%).
//!
//! ```sh
//! cargo run --release --example obs_overhead [rows_log2]
//! ```

use hashing_is_sorting::{distinct_observed, AggregateConfig, ObsConfig};
use std::time::Instant;

fn median_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let rows_log2: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(23);
    let n = 1usize << rows_log2;
    // ~n/8 groups: enough locality to exercise both routines adaptively.
    let keys: Vec<u64> =
        (0..n as u64).map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)) % (n as u64 / 8)).collect();
    let cfg = AggregateConfig::default();
    let repeats = 5;

    let configs: [(&str, ObsConfig); 3] = [
        ("disabled", ObsConfig::disabled()),
        ("metrics", ObsConfig { metrics: true, ..ObsConfig::disabled() }),
        ("metrics+trace", ObsConfig::full()),
    ];

    println!("# obs overhead: DISTINCT over 2^{rows_log2} rows, median of {repeats}");
    let mut base = None;
    for (name, obs) in &configs {
        let secs = median_secs(repeats, || {
            let (out, _) = distinct_observed(&keys, &cfg, obs);
            assert_eq!(out.n_groups(), n / 8);
        });
        let base = *base.get_or_insert(secs);
        println!(
            "{name:<14} {:>7.1} ms   {:>6.2} ns/row   {:+.2}% vs disabled",
            secs * 1e3,
            secs * 1e9 / n as f64,
            (secs / base - 1.0) * 100.0
        );
    }
}
