//! The Figure 8 experiment in miniature: ADAPTIVE vs prior work.
//!
//! Runs the paper's comparison query (DISTINCT over a uniform key column)
//! against the five re-implemented baselines for a small and a large K and
//! prints element times. Exact numbers depend on the machine; the *shape*
//! is the paper's: everyone is similar while the output fits in cache, and
//! the fixed-pass baselines fall behind once it does not.
//!
//! ```sh
//! cargo run --release --example versus_baselines
//! ```

use hashing_is_sorting::baselines::{all_baselines, BaselineConfig};
use hashing_is_sorting::datagen::{generate, Distribution};
use hashing_is_sorting::{distinct, AggregateConfig};
use std::time::Instant;

fn main() {
    let n = 1 << 22;
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());

    for k in [1u64 << 10, 1 << 20] {
        let keys = generate(Distribution::Uniform, n, k, 1);
        println!("N = 2^22, K = {k} ({} threads):", threads);

        let cfg = AggregateConfig::default();
        let t0 = Instant::now();
        let (out, _) = distinct(&keys, &cfg);
        let adaptive_ns = t0.elapsed().as_secs_f64() * 1e9 * threads as f64 / n as f64;
        println!(
            "  {:<24} {:>8.1} ns/element  ({} groups)",
            "ADAPTIVE (this paper)",
            adaptive_ns,
            out.n_groups()
        );

        let bcfg = BaselineConfig {
            threads,
            k_hint: k as usize,
            count: false,
            ..BaselineConfig::default()
        };
        for b in all_baselines() {
            let t0 = Instant::now();
            let bout = b.run(&keys, &bcfg);
            let ns = t0.elapsed().as_secs_f64() * 1e9 * threads as f64 / n as f64;
            assert_eq!(bout.keys.len(), out.n_groups(), "{} group count", b.name());
            println!("  {:<24} {:>8.1} ns/element", b.name(), ns);
        }
        println!();
    }
}
