//! A realistic analytical query on a column-store table.
//!
//! Builds a synthetic `sales(store, product, revenue, quantity)` fact
//! table with a skewed store distribution (big flagship stores, long tail)
//! and answers two queries with one operator each:
//!
//! 1. `SELECT store, COUNT(*), SUM(revenue), AVG(quantity) GROUP BY store`
//!    — few groups, heavy skew: the operator aggregates everything in
//!    cache, never partitioning.
//! 2. `SELECT product, SUM(revenue) GROUP BY product` — millions of
//!    products: the adaptive operator partitions first, exactly as §5
//!    prescribes, without being told K.
//!
//! ```sh
//! cargo run --release --example sales_report
//! ```

use hashing_is_sorting::datagen::{generate, generate_values, Distribution};
use hashing_is_sorting::{aggregate, AggSpec, AggregateConfig, Table};

fn main() {
    let n = 2_000_000;
    let mut sales = Table::new();
    // ~200 stores, self-similar: flagship stores dominate.
    sales.add_column("store", generate(Distribution::SelfSimilar, n, 200, 7));
    // ~1M products, uniform.
    sales.add_column("product", generate(Distribution::Uniform, n, 1 << 20, 8));
    sales.add_column("revenue", generate_values(n, 9));
    sales.add_column("quantity", generate(Distribution::Uniform, n, 50, 10));

    let cfg = AggregateConfig::default();

    // Query 1: per-store report.
    let (by_store, s1) = aggregate(
        sales.col("store"),
        &[sales.col("revenue"), sales.col("quantity")],
        &[AggSpec::count(), AggSpec::sum(0), AggSpec::avg(1)],
        &cfg,
    );
    let mut rows: Vec<usize> = (0..by_store.n_groups()).collect();
    rows.sort_unstable_by_key(|&r| std::cmp::Reverse(by_store.value(1, r) as u64));
    println!("top 5 stores by revenue ({} stores total):", by_store.n_groups());
    println!("  store   orders     revenue  avg qty");
    for &r in rows.iter().take(5) {
        println!(
            "  {:>5}  {:>7}  {:>10}  {:>7.2}",
            by_store.keys[r],
            by_store.value(0, r) as u64,
            by_store.value(1, r) as u64,
            by_store.value(2, r),
        );
    }
    println!(
        "  [operator: {} rows hashed, {} partitioned — high locality → hashing]\n",
        s1.total_hash_rows(),
        s1.total_part_rows()
    );

    // Query 2: per-product revenue (huge K).
    let (by_product, s2) =
        aggregate(sales.col("product"), &[sales.col("revenue")], &[AggSpec::sum(0)], &cfg);
    println!(
        "{} distinct products; total revenue {}",
        by_product.n_groups(),
        by_product.states[0].iter().sum::<u64>()
    );
    println!(
        "  [operator: {} rows hashed, {} partitioned over {} passes — low locality → partitioning]",
        s2.total_hash_rows(),
        s2.total_part_rows(),
        s2.passes_used()
    );

    // Cross-check the revenue total against the raw column.
    assert_eq!(by_product.states[0].iter().sum::<u64>(), sales.col("revenue").iter().sum::<u64>());
}
