//! Quickstart: the operator as a library user sees it.
//!
//! Runs `SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) GROUP BY k`
//! over a small generated table and prints the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hashing_is_sorting::{aggregate, AggSpec, AggregateConfig};

fn main() {
    // A tiny orders table: 1000 rows, 7 customers.
    let customers: Vec<u64> = (0..1000u64).map(|i| (i * i + i / 3) % 7).collect();
    let amounts: Vec<u64> = (0..1000u64).map(|i| 10 + i % 90).collect();

    let specs =
        [AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0), AggSpec::avg(0)];
    let (out, stats) = aggregate(&customers, &[&amounts], &specs, &AggregateConfig::default());

    println!("customer  count     sum  min  max     avg");
    let mut order: Vec<usize> = (0..out.n_groups()).collect();
    order.sort_unstable_by_key(|&r| out.keys[r]);
    for r in order {
        println!(
            "{:>8}  {:>5}  {:>6}  {:>3}  {:>3}  {:>6.2}",
            out.keys[r],
            out.value(0, r) as u64,
            out.value(1, r) as u64,
            out.value(2, r) as u64,
            out.value(3, r) as u64,
            out.value(4, r),
        );
    }
    println!(
        "\n{} groups; {} rows hashed, {} rows partitioned, {} table seals",
        out.n_groups(),
        stats.total_hash_rows(),
        stats.total_part_rows(),
        stats.seals
    );

    // Sanity: COUNT adds up to the input size.
    let total: u64 = (0..out.n_groups()).map(|r| out.value(0, r) as u64).sum();
    assert_eq!(total, customers.len() as u64);
}
