//! Watching the §5 adaptation decide.
//!
//! Runs the same DISTINCT-style aggregation over data sets with very
//! different locality and prints how the operator routed the rows: skewed
//! and clustered inputs stay on the early-aggregating `HASHING` path,
//! while a high-cardinality uniform input is detected (α < α₀ at the
//! first table seal) and rerouted through `PARTITIONING` — per thread, at
//! runtime, with no optimizer estimate of K.
//!
//! ```sh
//! cargo run --release --example adaptive_trace
//! ```

use hashing_is_sorting::datagen::{generate, Distribution};
use hashing_is_sorting::{distinct, AggregateConfig};

fn main() {
    let n = 4_000_000;
    let cfg = AggregateConfig::default();

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>7} {:>9} {:>7}",
        "distribution", "K", "hash rows", "part rows", "seals", "switches", "passes"
    );
    // K = 2^18 gives N/K = 16 repeats per key: above α₀ ≈ 11, so sorted /
    // clustered inputs sustain hashing, while uniform at the same K (and
    // heavy-hitter, whose non-hitter tail behaves like uniform — exactly
    // §6.5's observation) drop below α₀ and switch.
    for (dist, k) in [
        (Distribution::Sorted, 1 << 18),
        (Distribution::MovingCluster, 1 << 18),
        (Distribution::SelfSimilar, 1 << 18),
        (Distribution::HeavyHitter, 1 << 18),
        (Distribution::Uniform, 1 << 10), // fits in cache: hashing wins
        (Distribution::Uniform, 1 << 18), // exceeds cache: partitioning wins
    ] {
        let keys = generate(dist, n, k, 42);
        let (out, stats) = distinct(&keys, &cfg);
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>7} {:>9} {:>7}",
            dist.name(),
            k,
            stats.total_hash_rows(),
            stats.total_part_rows(),
            stats.seals,
            stats.switches_to_partitioning,
            stats.passes_used(),
        );
        assert!(out.n_groups() <= k as usize + 1);
    }

    println!(
        "\nReading the table: spatial locality (sorted, moving-cluster) keeps the\n\
         reduction factor α above α₀, so rows stay on the early-aggregating hashing\n\
         path; uniform data with K beyond the cache drops α to ≈1 and the operator\n\
         reroutes the bulk of the input through the ~4× faster partitioning routine.\n\
         Heavy-hitter switches at the same point as uniform — §6.5's observation that\n\
         the non-hitter keys are the hard part of that distribution."
    );
}
