//! Distributed-style aggregation with `merge_partials`.
//!
//! The paper's super-aggregate machinery (§3.1) is exactly what a
//! scale-out aggregation needs: each "node" aggregates its shard, ships
//! the small partial result, and a final operator run merges the partials
//! — COUNT partials via SUM, MIN via MIN, and AVG via its (SUM, COUNT)
//! decomposition.
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```

use hashing_is_sorting::datagen::{generate, generate_values, Distribution};
use hashing_is_sorting::{aggregate, merge_partials, AggSpec, AggregateConfig};

fn main() {
    let shards = 4;
    let rows_per_shard = 500_000;
    let k = 10_000;
    let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::avg(0)];
    let cfg = AggregateConfig::default();

    // Each shard aggregates its own data (in a real system: on its node).
    let shard_data: Vec<(Vec<u64>, Vec<u64>)> = (0..shards)
        .map(|s| {
            (
                generate(Distribution::Zipf, rows_per_shard, k, 1000 + s),
                generate_values(rows_per_shard, 2000 + s),
            )
        })
        .collect();
    let partials: Vec<_> = shard_data
        .iter()
        .map(|(keys, vals)| aggregate(keys, &[vals.as_slice()], &specs, &cfg).0)
        .collect();
    for (s, p) in partials.iter().enumerate() {
        println!(
            "shard {s}: {} rows -> {} partial groups ({}x reduction)",
            rows_per_shard,
            p.n_groups(),
            rows_per_shard / p.n_groups().max(1)
        );
    }

    // The coordinator merges the partials with one more operator run.
    let refs: Vec<_> = partials.iter().collect();
    let (merged, stats) = merge_partials(&refs, &specs, &cfg);
    println!(
        "\nmerged: {} groups from {} partial rows ({} hashed, {} partitioned)",
        merged.n_groups(),
        partials.iter().map(|p| p.n_groups()).sum::<usize>(),
        stats.total_hash_rows(),
        stats.total_part_rows(),
    );

    // Verify against a single-pass aggregation over all the data.
    let all_keys: Vec<u64> = shard_data.iter().flat_map(|(k, _)| k.iter().copied()).collect();
    let all_vals: Vec<u64> = shard_data.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    let (whole, _) = aggregate(&all_keys, &[&all_vals], &specs, &cfg);
    assert_eq!(whole.sorted_rows(), merged.sorted_rows());
    println!("single-pass aggregation over all {} rows agrees ✓", all_keys.len());

    // Show one group end to end.
    let r = merged.keys.iter().position(|&key| key == 1).expect("key 1 exists");
    println!(
        "\ngroup key=1: count {}, sum {}, min {}, avg {:.2}",
        merged.value(0, r),
        merged.value(1, r),
        merged.value(2, r),
        merged.value(3, r),
    );
}
